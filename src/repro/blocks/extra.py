"""Additional library blocks: DataTypeConversion, DeadZone, Quantizer,
Norm, Interpolation.

These extend the supported vocabulary beyond what the zoo strictly needs
(the paper's tool "supports numerous blocks"); each carries the full
property-library contract — semantics, I/O mapping, range-aware emission —
so redundancy elimination works through them unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import BlockSpec, Signal, register
from repro.blocks.math_ops import ElementwiseSpec
from repro.errors import ValidationError
from repro.ir.build import EmitCtx, add, binop, call, const, load, mul, select, sub
from repro.ir.ops import Assign, Expr, For, Var
from repro.model.block import Block

_CONVERTIBLE = {"float64", "uint32"}


@register
class DataTypeConversionSpec(ElementwiseSpec):
    """Cast between float64 and uint32 (C assignment-conversion rules)."""

    type_name = "DataTypeConversion"

    def _target(self, block: Block) -> str:
        target = str(block.require_param("to"))
        if target not in _CONVERTIBLE:
            raise ValidationError(
                f"DataTypeConversion {block.name!r}: target {target!r} "
                f"not in {sorted(_CONVERTIBLE)}"
            )
        return target

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._target(block)
        if in_sigs and in_sigs[0].dtype not in _CONVERTIBLE:
            raise ValidationError(
                f"DataTypeConversion {block.name!r}: source dtype "
                f"{in_sigs[0].dtype} unsupported"
            )

    def out_dtype(self, block, in_dtypes):
        return self._target(block)

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        if self._target(block) == "uint32":
            # C truncation toward zero; the uint32 store wraps like C.
            return call("toint", operands[0])
        return operands[0]  # int loads promote to double on store

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        if self._target(block) == "uint32":
            with np.errstate(invalid="ignore"):
                return np.trunc(arrays[0]).astype("int64").astype("uint32")
        return arrays[0].astype("float64")


@register
class DeadZoneSpec(ElementwiseSpec):
    """Zero output inside [lower, upper]; shifted passthrough outside."""

    type_name = "DeadZone"

    def _bounds(self, block: Block) -> tuple[float, float]:
        lower = float(block.require_param("lower"))
        upper = float(block.require_param("upper"))
        if lower > upper:
            raise ValidationError(
                f"DeadZone {block.name!r}: lower {lower} > upper {upper}"
            )
        return lower, upper

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._bounds(block)

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        lower, upper = self._bounds(block)
        u = operands[0]
        return select(binop("<", u, const(lower)), sub(u, const(lower)),
                      select(binop(">", u, const(upper)),
                             sub(u, const(upper)), const(0.0)))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        lower, upper = self._bounds(block)
        u = arrays[0]
        return np.where(u < lower, u - lower,
                        np.where(u > upper, u - upper, 0.0))


@register
class QuantizerSpec(ElementwiseSpec):
    """Uniform quantization: ``round(u / q) * q``."""

    type_name = "Quantizer"

    def _interval(self, block: Block) -> float:
        q = float(block.require_param("interval"))
        if q <= 0:
            raise ValidationError(
                f"Quantizer {block.name!r}: interval must be positive"
            )
        return q

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._interval(block)

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        q = self._interval(block)
        return mul(call("round", mul(operands[0], const(1.0 / q))), const(q))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        q = self._interval(block)
        # C round() rounds half away from zero (unlike numpy's banker's
        # rounding), so build it explicitly.
        scaled = arrays[0] / q
        rounded = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
        return rounded * q

    def out_dtype(self, block, in_dtypes):
        return "float64"


@register
class NormSpec(BlockSpec):
    """Euclidean norm of a vector: ``sqrt(sum(u[i]^2))``."""

    type_name = "Norm"

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        if in_sigs[0].dtype == "complex128":
            raise ValidationError(f"Norm {block.name!r}: complex unsupported")
        return Signal((), "float64")

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        return np.asarray(np.linalg.norm(
            np.asarray(inputs[0], dtype="float64").ravel()))

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        from repro.core.intervals import IndexSet
        if out_range.is_empty:
            return [IndexSet.empty()]
        return [in_sigs[0].full_range()]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        if ctx.out_range.is_empty:
            return
        size = ctx.in_size(0)
        ctx.emit(Assign(ctx.output, const(0), const(0.0)))
        t = ctx.fresh("n")
        u = load(ctx.inputs[0], Var(t))
        ctx.emit(For(t, 0, size, [Assign(
            ctx.output, const(0), add(load(ctx.output, 0), mul(u, u)),
        )], vectorizable=True))
        ctx.emit(Assign(ctx.output, const(0), call("sqrt", load(ctx.output, 0))))


@register
class InterpolationSpec(ElementwiseSpec):
    """1-D linear interpolation over uniform breakpoints.

    ``table`` holds sample values at ``x0 + i*dx``; inputs are clamped to
    the table's domain (matching ``np.interp``'s end behaviour).
    """

    type_name = "Interpolation"

    def _params(self, block: Block) -> tuple[np.ndarray, float, float]:
        table = np.asarray(block.require_param("table"), dtype="float64").ravel()
        x0 = float(block.param("x0", 0.0))
        dx = float(block.param("dx", 1.0))
        if table.size < 2:
            raise ValidationError(
                f"Interpolation {block.name!r}: table needs >= 2 entries"
            )
        if dx <= 0:
            raise ValidationError(
                f"Interpolation {block.name!r}: dx must be positive"
            )
        return table, x0, dx

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._params(block)
        if in_sigs and in_sigs[0].dtype != "float64":
            raise ValidationError(
                f"Interpolation {block.name!r}: float64 input required"
            )

    def out_dtype(self, block, in_dtypes):
        return "float64"

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        table, x0, dx = self._params(block)
        xs = x0 + dx * np.arange(table.size)
        return np.interp(arrays[0], xs, table)

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        table, x0, dx = self._params(block)
        table_buf = f"{ctx.output}_tab"
        ctx.program.declare(table_buf, (table.size,), "float64", "const", table)
        n = table.size

        def body(index: Expr):
            u = load(ctx.inputs[0], const(0) if ctx.in_size(0) == 1 else index)
            f = mul(sub(u, const(x0)), const(1.0 / dx))
            f_clamped = call("fmin", call("fmax", f, const(0.0)),
                             const(float(n - 1)))
            cell = call("toint", call("fmin", f_clamped, const(float(n - 2))))
            frac = sub(f_clamped, cell)
            lo = load(table_buf, cell)
            hi = load(table_buf, add(cell, const(1)))
            value = add(lo, mul(frac, sub(hi, lo)))
            return [Assign(ctx.output, index, value)]
        ctx.loops_over_range(body, vectorizable=False)
