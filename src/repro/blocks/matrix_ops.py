"""Matrix blocks: MatrixMultiply, Transpose, Hermitian, Submatrix.

Signals are stored flattened row-major, so these specs translate between
flat element indices and (row, column) coordinates.  Their I/O mappings are
the interesting ones for redundancy elimination:

* a Submatrix is a 2-D data-truncation block;
* demanding a sub-block of a MatrixMultiply output pulls back onto the
  touched *rows* of the left operand and *columns* of the right operand —
  so a downstream Submatrix trims entire rows/columns of upstream work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import BlockSpec, Signal, promote, register
from repro.core.intervals import IndexSet, Region
from repro.errors import ValidationError
from repro.ir.build import EmitCtx, add, binop, call, const, load, mul
from repro.ir.ops import Assign, Expr, For, Var
from repro.model.block import Block


def _as_matrix(sig: Signal) -> tuple[int, int]:
    """Interpret a signal as (rows, cols); vectors are 1×n rows."""
    if len(sig.shape) == 2:
        return sig.shape
    if len(sig.shape) == 1:
        return (1, sig.shape[0])
    if len(sig.shape) == 0:
        return (1, 1)
    raise ValidationError(f"matrix blocks support <=2-D signals, got {sig.shape}")


@register
class MatrixMultiplySpec(BlockSpec):
    """C = A·B with A (m×k), B (k×n)."""

    type_name = "MatrixMultiply"
    min_inputs = 2
    max_inputs = 2

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        (_, k_a), (k_b, _) = _as_matrix(in_sigs[0]), _as_matrix(in_sigs[1])
        if k_a != k_b:
            raise ValidationError(
                f"MatrixMultiply {block.name!r}: inner dimensions disagree "
                f"({k_a} vs {k_b})"
            )

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        (m, _), (_, n) = _as_matrix(in_sigs[0]), _as_matrix(in_sigs[1])
        return Signal((m, n), promote(in_sigs[0].dtype, in_sigs[1].dtype))

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        a = np.asarray(inputs[0])
        b = np.asarray(inputs[1])
        a2 = a.reshape(_as_matrix(Signal(a.shape, str(a.dtype))))
        b2 = b.reshape(_as_matrix(Signal(b.shape, str(b.dtype))))
        return a2 @ b2

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        if out_range.is_empty:
            return [IndexSet.empty(), IndexSet.empty()]
        (m, k), (_, n) = _as_matrix(in_sigs[0]), _as_matrix(in_sigs[1])
        out_region = Region((m, n), out_range)
        rows = out_region.rows_touched()
        cols = out_region.cols_touched()
        a_region = Region.from_rows_cols((m, k), rows, IndexSet.full(k))
        b_region = Region.from_rows_cols((k, n), IndexSet.full(k), cols)
        return [a_region.indices, b_region.indices]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        (_, k), (_, n) = (_as_matrix(Signal(s, d)) for s, d in
                          zip(ctx.in_shapes, ctx.in_dtypes))
        a, b = ctx.inputs

        def body(index: Expr):
            row = binop("/", index, const(n))
            col = binop("%", index, const(n))
            t = ctx.fresh("t")
            inner = For(t, 0, k, [Assign(
                ctx.output, index,
                add(load(ctx.output, index),
                    mul(load(a, add(mul(row, const(k)), Var(t))),
                        load(b, add(mul(Var(t), const(n)), col)))),
            )], vectorizable=True)
            if ctx.style.forced_simd and k >= ctx.style.simd_min_width:
                inner.forced_simd = True
            return [Assign(ctx.output, index, const(0.0)), inner]
        ctx.loops_over_range(body, vectorizable=False)


class _PermutationSpec(BlockSpec):
    """Shared machinery for index-permutation blocks (Transpose family)."""

    def _dims(self, in_sig: Signal) -> tuple[int, int]:
        return _as_matrix(in_sig)

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        m, n = self._dims(in_sigs[0])
        return Signal((n, m), in_sigs[0].dtype)

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        m, n = self._dims(in_sigs[0])
        # Output is n×m: out flat o = c*m + r maps to in flat r*n + c.
        return [out_range.map_indices(lambda o: (o % m) * n + (o // m))]

    def _wrap(self, value: Expr) -> Expr:
        return value

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        m, n = _as_matrix(Signal(ctx.in_shapes[0], ctx.in_dtypes[0]))

        def body(index: Expr):
            src = add(mul(binop("%", index, const(m)), const(n)),
                      binop("/", index, const(m)))
            return [Assign(ctx.output, index, self._wrap(load(ctx.inputs[0], src)))]
        ctx.loops_over_range(body, vectorizable=False)


@register
class TransposeSpec(_PermutationSpec):
    type_name = "Transpose"

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        u = np.asarray(inputs[0])
        return u.reshape(_as_matrix(Signal(u.shape, str(u.dtype)))).T.copy()


@register
class HermitianSpec(_PermutationSpec):
    """Hermitian (conjugate) transpose — the HT model's core block."""

    type_name = "Hermitian"

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        u = np.asarray(inputs[0])
        return np.conj(u.reshape(_as_matrix(Signal(u.shape, str(u.dtype)))).T)

    def _wrap(self, value: Expr) -> Expr:
        return call("conj", value)


@register
class SubmatrixSpec(BlockSpec):
    """2-D data-truncation: inclusive row/column window of a matrix."""

    type_name = "Submatrix"
    is_truncation = True

    def _window(self, block: Block) -> tuple[int, int, int, int]:
        return (int(block.require_param("row_start")),
                int(block.require_param("row_end")),
                int(block.require_param("col_start")),
                int(block.require_param("col_end")))

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        m, n = _as_matrix(in_sigs[0])
        r0, r1, c0, c1 = self._window(block)
        if not (0 <= r0 <= r1 < m and 0 <= c0 <= c1 < n):
            raise ValidationError(
                f"Submatrix {block.name!r}: window rows[{r0},{r1}] "
                f"cols[{c0},{c1}] outside {m}x{n}"
            )

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        r0, r1, c0, c1 = self._window(block)
        return Signal((r1 - r0 + 1, c1 - c0 + 1), in_sigs[0].dtype)

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        u = np.asarray(inputs[0])
        m, n = _as_matrix(Signal(u.shape, str(u.dtype)))
        r0, r1, c0, c1 = self._window(block)
        return u.reshape(m, n)[r0:r1 + 1, c0:c1 + 1].copy()

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        _, n = _as_matrix(in_sigs[0])
        r0, _, c0, _ = self._window(block)
        w = out_sig.shape[1]
        return [out_range.map_indices(
            lambda o: (o // w + r0) * n + (o % w + c0)
        )]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        _, n = _as_matrix(Signal(ctx.in_shapes[0], ctx.in_dtypes[0]))
        r0, r1, c0, c1 = self._window(block)
        w = c1 - c0 + 1

        def body(index: Expr):
            src = add(mul(add(binop("/", index, const(w)), const(r0)), const(n)),
                      add(binop("%", index, const(w)), const(c0)))
            return [Assign(ctx.output, index, load(ctx.inputs[0], src))]
        ctx.loops_over_range(body, vectorizable=False)


@register
class DimSumSpec(BlockSpec):
    """Sum along one dimension of a matrix (Simulink's Sum with a
    ``dimension`` parameter).

    ``dimension="rows"`` sums each column (output: one row of length n);
    ``dimension="cols"`` sums each row (output: one column of length m).
    The I/O mapping is rectangular: a demanded output column pulls back
    exactly that column of the input, so a downstream Selector trims
    whole columns/rows of the reduction.
    """

    type_name = "DimSum"

    def _dimension(self, block: Block) -> str:
        dim = str(block.param("dimension", "rows"))
        if dim not in ("rows", "cols"):
            raise ValidationError(
                f"DimSum {block.name!r}: dimension must be rows/cols"
            )
        return dim

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._dimension(block)
        if len(in_sigs[0].shape) != 2:
            raise ValidationError(
                f"DimSum {block.name!r}: 2-D input required, got "
                f"{in_sigs[0].shape}"
            )

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        m, n = in_sigs[0].shape
        length = n if self._dimension(block) == "rows" else m
        return Signal((length,), promote("float64", in_sigs[0].dtype))

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        u = np.asarray(inputs[0], dtype="float64")
        axis = 0 if self._dimension(block) == "rows" else 1
        return u.sum(axis=axis)

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        m, n = in_sigs[0].shape
        if out_range.is_empty:
            return [IndexSet.empty()]
        if self._dimension(block) == "rows":
            region = Region.from_rows_cols((m, n), IndexSet.full(m), out_range)
        else:
            region = Region.from_rows_cols((m, n), out_range, IndexSet.full(n))
        return [region.indices]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        m, n = ctx.in_shapes[0]
        u = ctx.inputs[0]
        along_rows = self._dimension(block) == "rows"

        def body(index: Expr):
            t = ctx.fresh("d")
            if along_rows:
                src = add(mul(Var(t), const(n)), index)   # column `index`
                trip = m
            else:
                src = add(mul(index, const(n)), Var(t))   # row `index`
                trip = n
            inner = For(t, 0, trip, [Assign(
                ctx.output, index,
                add(load(ctx.output, index), load(u, src)),
            )], vectorizable=not along_rows)
            if ctx.style.forced_simd and trip >= ctx.style.simd_min_width:
                inner.forced_simd = True
            return [Assign(ctx.output, index, const(0.0)), inner]
        ctx.loops_over_range(body, vectorizable=False)
