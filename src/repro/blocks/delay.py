"""Discrete-state blocks: UnitDelay and Delay.

Delays are the only stateful blocks in the library.  For scheduling they
act as sources (their output is available at step start from state), and
their input is consumed at step end — the generator calls
:meth:`~repro.blocks.base.BlockSpec.emit_update` after all regular block
code.  Their I/O mapping is the elementwise identity across a step
boundary, which stays sound under range trimming because the demanded set
is static over time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import BlockSpec, Signal, register
from repro.errors import ValidationError
from repro.ir.build import EmitCtx, add, const, load
from repro.ir.ops import Assign, Expr, For, Var
from repro.model.block import Block


def _initial_array(block: Block, out_sig: Signal) -> np.ndarray:
    initial = block.param("initial", 0.0)
    arr = np.asarray(initial, dtype=out_sig.dtype)
    if arr.size == 1:
        return np.full(out_sig.size, arr.ravel()[0], dtype=out_sig.dtype)
    if arr.size != out_sig.size:
        raise ValidationError(
            f"{block.block_type} {block.name!r}: initial value has "
            f"{arr.size} elements, signal has {out_sig.size}"
        )
    return arr.ravel().astype(out_sig.dtype)


@register
class UnitDelaySpec(BlockSpec):
    """One-step delay: output is last step's input."""

    type_name = "UnitDelay"
    is_stateful = True

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        return in_sigs[0]

    def initial_state(self, block, in_sigs, out_sig):
        return _initial_array(block, out_sig)

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        raise NotImplementedError  # the simulator special-cases delays

    def read_state(self, block: Block, state: dict[str, np.ndarray],
                   out_sig: Signal) -> np.ndarray:
        return state[block.name].reshape(out_sig.shape).copy()

    def write_state(self, block: Block, state: dict[str, np.ndarray],
                    value: np.ndarray) -> None:
        state[block.name] = np.asarray(value).ravel().copy()

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        return [out_range]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        ctx.copy_range(self.state_buffer(ctx))

    def emit_update(self, block: Block, ctx: EmitCtx) -> None:
        state = self.state_buffer(ctx)

        def body(index: Expr):
            return [Assign(state, index, load(ctx.inputs[0], index))]
        ctx.loops_over_range(body)

    @staticmethod
    def state_buffer(ctx: EmitCtx) -> str:
        return f"{ctx.output}_z"


@register
class DelaySpec(BlockSpec):
    """N-step delay with a shift-register state of shape (length, n)."""

    type_name = "Delay"
    is_stateful = True

    def _length(self, block: Block) -> int:
        length = int(block.require_param("length"))
        if length < 1:
            raise ValidationError(f"Delay {block.name!r}: length must be >= 1")
        return length

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._length(block)

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        return in_sigs[0]

    def initial_state(self, block, in_sigs, out_sig):
        base = _initial_array(block, out_sig)
        return np.tile(base, self._length(block))

    def step(self, block, inputs, state):
        raise NotImplementedError  # the simulator special-cases delays

    def read_state(self, block: Block, state: dict[str, np.ndarray],
                   out_sig: Signal) -> np.ndarray:
        return state[block.name][:out_sig.size].reshape(out_sig.shape).copy()

    def write_state(self, block: Block, state: dict[str, np.ndarray],
                    value: np.ndarray) -> None:
        buf = state[block.name]
        n = np.asarray(value).size
        buf[:-n] = buf[n:]
        buf[-n:] = np.asarray(value).ravel()

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        return [out_range]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        ctx.copy_range(UnitDelaySpec.state_buffer(ctx))

    def emit_update(self, block: Block, ctx: EmitCtx) -> None:
        state = UnitDelaySpec.state_buffer(ctx)
        length = self._length(block)
        n = ctx.out_size()
        if length > 1:
            i = ctx.fresh("z")
            ctx.emit(For(i, 0, (length - 1) * n, [Assign(
                state, Var(i), load(state, add(Var(i), const(n)))
            )], vectorizable=True))
        offset = (length - 1) * n

        def body(index: Expr):
            return [Assign(state, add(index, const(offset)),
                           load(ctx.inputs[0], index))]
        ctx.loops_over_range(body)
