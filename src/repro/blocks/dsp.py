"""DSP blocks: Convolution (the paper's motivating block), Difference,
CumulativeSum.

Convolution is the showcase for the element-level code library (paper
Figure 4): the generator-visible lowering distinguishes *individual
elements* (edge positions whose kernel window is clipped — snippet ①) from
*consecutive elements* (interior positions with a full window — snippet ②).
With a downstream Selector trimming the output to the interior ("same"
convolution), FRODO's calculation range contains no edge positions at all
and the emitted code is a branch-free dense loop nest; the Simulink
Embedded Coder shape instead guards every accumulation with boundary
judgments, which is exactly the inefficiency Figure 1 illustrates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import BlockSpec, Signal, promote, register
from repro.core.intervals import IndexSet
from repro.errors import ValidationError
from repro.ir.build import EmitCtx, add, binop, const, load, mul, sub
from repro.ir.ops import Assign, Expr, For, If, Var
from repro.model.block import Block


@register
class ConvolutionSpec(BlockSpec):
    """Full 1-D convolution: inputs (data ``u`` of n, kernel ``h`` of m),
    output of n + m - 1 elements."""

    type_name = "Convolution"
    min_inputs = 2
    max_inputs = 2

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        n, m = in_sigs[0].size, in_sigs[1].size
        if m < 1 or n < m:
            raise ValidationError(
                f"Convolution {block.name!r}: data length {n} must be >= "
                f"kernel length {m} >= 1"
            )
        for sig in in_sigs:
            if sig.dtype == "uint32":
                raise ValidationError(
                    f"Convolution {block.name!r}: integer signals unsupported"
                )

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        n, m = in_sigs[0].size, in_sigs[1].size
        return Signal((n + m - 1,), promote(in_sigs[0].dtype, in_sigs[1].dtype))

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        u = np.asarray(inputs[0]).ravel()
        h = np.asarray(inputs[1]).ravel()
        return np.convolve(u, h)

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        if out_range.is_empty:
            return [IndexSet.empty(), IndexSet.empty()]
        n, m = in_sigs[0].size, in_sigs[1].size
        data = out_range.dilate(m - 1, 0).clamp(0, n)
        return [data, IndexSet.full(m)]

    # -- lowering -----------------------------------------------------------

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        n, m = ctx.in_size(0), ctx.in_size(1)
        if ctx.style.boundary_judgments:
            self._emit_boundary_judgments(ctx, n, m)
        elif ctx.style.generic_functions:
            self._emit_generic_calls(ctx, n, m)
        else:
            self._emit_zoned(ctx, n, m)

    def _emit_boundary_judgments(self, ctx: EmitCtx, n: int, m: int) -> None:
        """Simulink Embedded Coder shape: one loop, per-element guards."""
        u, h = ctx.inputs

        def body(index: Expr):
            j = ctx.fresh("j")
            data_idx = sub(index, Var(j))
            guard = binop("&&", binop(">=", data_idx, const(0)),
                          binop("<", data_idx, const(n)))
            inner = For(j, 0, m, [If(guard, [Assign(
                ctx.output, index,
                add(load(ctx.output, index),
                    mul(load(h, Var(j)), load(u, data_idx))),
            )])], vectorizable=False)
            return [Assign(ctx.output, index, const(0.0)), inner]
        ctx.loops_over_range(body, vectorizable=False)

    def _emit_zoned(self, ctx: EmitCtx, n: int, m: int) -> None:
        """Branch-free zoned lowering from the element-level code library.

        The output domain splits into a left edge ``[0, m-1)``, an interior
        ``[m-1, n)`` whose kernel window is complete, and a right edge
        ``[n, n+m-1)``.  Interior runs use the consecutive-elements snippet
        (dense loop); edge positions use the individual-element snippet
        with exact static bounds — no per-element guards anywhere.
        """
        u, h = ctx.inputs
        interior = ctx.out_range & IndexSet.interval(m - 1, n)
        edges = ctx.out_range - interior

        saved = ctx.out_range
        ctx.out_range = interior

        def interior_body(index: Expr):
            j = ctx.fresh("j")
            inner = For(j, 0, m, [Assign(
                ctx.output, index,
                add(load(ctx.output, index),
                    mul(load(h, Var(j)), load(u, sub(index, Var(j))))),
            )], vectorizable=True)
            if ctx.style.forced_simd and m >= ctx.style.simd_min_width:
                inner.forced_simd = True
            return [Assign(ctx.output, index, const(0.0)), inner]
        ctx.loops_over_range(interior_body, vectorizable=False)

        # Individual-element snippet for clipped windows (exact bounds).
        ctx.out_range = saved
        for k in edges:
            j_lo = max(0, k - n + 1)
            j_hi = min(k, m - 1) + 1
            ctx.emit(Assign(ctx.output, const(k), const(0.0)))
            j = ctx.fresh("e")
            ctx.emit(For(j, j_lo, j_hi, [Assign(
                ctx.output, const(k),
                add(load(ctx.output, const(k)),
                    mul(load(h, Var(j)), load(u, sub(const(k), Var(j))))),
            )], vectorizable=False))


    # -- §5 extension: generic function interface ----------------------------

    _DTYPE_CODE = {"float64": "f64", "complex128": "c128"}

    def _ensure_conv_functions(self, ctx: EmitCtx, dtype: str) -> tuple[str, str]:
        """Define (once per program) the shared convolution kernels.

        ``conv_interior_<t>(u, h, out, lo, hi, m)`` computes full-window
        positions ``[lo, hi)``; ``conv_edge_<t>(u, h, out, k, j_lo, j_hi)``
        computes one clipped position.  Calculation-range bounds arrive as
        parameters — the paper's §5 mitigation for code duplication.
        """
        from repro.ir.ops import FuncDef, FuncParam  # local: optional path
        code = self._DTYPE_CODE[dtype]
        interior_name = f"conv_interior_{code}"
        edge_name = f"conv_edge_{code}"
        if interior_name not in ctx.program.functions:
            pointers = [FuncParam("gu", dtype), FuncParam("gh", dtype),
                        FuncParam("gout", dtype, const=False)]

            body_i: list = []
            inner = For("gj", 0, Var("gm"), [Assign(
                "gout", Var("gi"),
                add(load("gout", Var("gi")),
                    mul(load("gh", Var("gj")),
                        load("gu", sub(Var("gi"), Var("gj"))))),
            )], vectorizable=True)
            body_i.append(For("gi", Var("glo"), Var("ghi"),
                              [Assign("gout", Var("gi"), const(0.0)), inner]))
            ctx.program.define_function(FuncDef(interior_name, [
                *pointers, FuncParam("glo", "int64", pointer=False),
                FuncParam("ghi", "int64", pointer=False),
                FuncParam("gm", "int64", pointer=False),
            ], body_i))

            body_e: list = [
                Assign("gout", Var("gk"), const(0.0)),
                For("gj", Var("gjlo"), Var("gjhi"), [Assign(
                    "gout", Var("gk"),
                    add(load("gout", Var("gk")),
                        mul(load("gh", Var("gj")),
                            load("gu", sub(Var("gk"), Var("gj"))))),
                )], vectorizable=False),
            ]
            ctx.program.define_function(FuncDef(edge_name, [
                *pointers, FuncParam("gk", "int64", pointer=False),
                FuncParam("gjlo", "int64", pointer=False),
                FuncParam("gjhi", "int64", pointer=False),
            ], body_e))
        return interior_name, edge_name

    def _emit_generic_calls(self, ctx: EmitCtx, n: int, m: int) -> None:
        """Lower via the shared functions instead of inlined zoned code."""
        from repro.ir.ops import CallStmt
        interior_name, edge_name = self._ensure_conv_functions(
            ctx, ctx.out_dtype)
        u, h = ctx.inputs
        buffers = [u, h, ctx.output]
        interior = ctx.out_range & IndexSet.interval(m - 1, n)
        for start, stop in interior.runs():
            ctx.emit(CallStmt(interior_name, list(buffers),
                              [const(start), const(stop), const(m)]))
        for k in ctx.out_range - interior:
            j_lo = max(0, k - n + 1)
            j_hi = min(k, m - 1) + 1
            ctx.emit(CallStmt(edge_name, list(buffers),
                              [const(k), const(j_lo), const(j_hi)]))


@register
class DifferenceSpec(BlockSpec):
    """First difference: ``out[i] = u[i+1] - u[i]`` (length n-1)."""

    type_name = "Difference"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        if in_sigs[0].size < 2:
            raise ValidationError(
                f"Difference {block.name!r} needs at least 2 input elements"
            )

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        return Signal((in_sigs[0].size - 1,), in_sigs[0].dtype)

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        return np.diff(np.asarray(inputs[0]).ravel())

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        return [out_range.dilate(0, 1).clamp(0, in_sigs[0].size)]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        u = ctx.inputs[0]

        def body(index: Expr):
            return [Assign(ctx.output, index,
                           sub(load(u, add(index, const(1))), load(u, index)))]
        ctx.loops_over_range(body)


@register
class CumulativeSumSpec(BlockSpec):
    """Running sum: ``out[i] = out[i-1] + u[i]``.

    The recurrence forces a *prefix-closed* calculation range: computing
    element ``i`` needs every earlier output, so
    :meth:`required_output_range` widens any demand to the prefix ``[0,
    hi)``.  FRODO can still trim the tail beyond the last demanded element.
    """

    type_name = "CumulativeSum"

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        return Signal((in_sigs[0].size,), promote("float64", in_sigs[0].dtype))

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        return np.cumsum(np.asarray(inputs[0], dtype="float64").ravel())

    def required_output_range(self, block, demanded, out_sig):
        if demanded.is_empty:
            return demanded
        return IndexSet.interval(0, demanded.span[1])

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        if out_range.is_empty:
            return [IndexSet.empty()]
        return [IndexSet.interval(0, out_range.span[1])]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        if ctx.out_range.is_empty:
            return
        hi = ctx.out_range.span[1]
        u = ctx.inputs[0]
        ctx.emit(Assign(ctx.output, const(0), load(u, 0)))
        if hi > 1:
            i = ctx.fresh("c")
            ctx.emit(For(i, 1, hi, [Assign(
                ctx.output, Var(i),
                add(load(ctx.output, sub(Var(i), const(1))), load(u, Var(i))),
            )], vectorizable=False))
