"""Block property library (paper §3.1).

Importing this package registers every supported block spec.  Use
:func:`get_spec` / :func:`spec_for` to look specs up by block type, and
:func:`registered_types` to enumerate the supported vocabulary.
"""

from repro.blocks.base import (  # noqa: F401
    BlockSpec, Signal, broadcast_shape, get_spec, promote, register,
    registered_types, spec_for,
)

# Importing the spec modules populates the registry.
from repro.blocks import delay      # noqa: F401,E402
from repro.blocks import dsp        # noqa: F401,E402
from repro.blocks import extra      # noqa: F401,E402
from repro.blocks import image      # noqa: F401,E402
from repro.blocks import int_ops    # noqa: F401,E402
from repro.blocks import math_ops   # noqa: F401,E402
from repro.blocks import matrix_ops  # noqa: F401,E402
from repro.blocks import reduction  # noqa: F401,E402
from repro.blocks import routing    # noqa: F401,E402
from repro.blocks import signal_ops  # noqa: F401,E402
from repro.blocks import sinks      # noqa: F401,E402
from repro.blocks import sources    # noqa: F401,E402
