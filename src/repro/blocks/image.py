"""2-D image blocks: Convolution2D.

The paper's data-intensive models are 1-D signal chains, but the same
redundancy pattern dominates image pipelines: a full-padding 2-D
convolution followed by a Submatrix selecting the valid interior (or a
region of interest) recomputes a border nobody reads.  Convolution2D
carries the full property-library contract, with the I/O mapping built on
:class:`~repro.core.intervals.Region` — demanding an output rectangle
pulls back a dilated input rectangle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import BlockSpec, Signal, promote, register
from repro.core.intervals import IndexSet, Region
from repro.errors import ValidationError
from repro.ir.build import EmitCtx, add, binop, const, load, mul, sub
from repro.ir.ops import Assign, Expr, For, If, Var
from repro.model.block import Block


def _dims(sig: Signal) -> tuple[int, int]:
    if len(sig.shape) != 2:
        raise ValidationError(
            f"Convolution2D requires 2-D signals, got shape {sig.shape}"
        )
    return sig.shape


@register
class Convolution2DSpec(BlockSpec):
    """Full 2-D convolution: image (H×W) * kernel (kh×kw) →
    (H+kh-1)×(W+kw-1)."""

    type_name = "Convolution2D"
    min_inputs = 2
    max_inputs = 2

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        (h, w), (kh, kw) = _dims(in_sigs[0]), _dims(in_sigs[1])
        if kh < 1 or kw < 1 or h < kh or w < kw:
            raise ValidationError(
                f"Convolution2D {block.name!r}: image {h}x{w} must cover "
                f"kernel {kh}x{kw}"
            )
        for sig in in_sigs:
            if sig.dtype == "uint32":
                raise ValidationError(
                    f"Convolution2D {block.name!r}: integer images unsupported"
                )

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        (h, w), (kh, kw) = _dims(in_sigs[0]), _dims(in_sigs[1])
        return Signal((h + kh - 1, w + kw - 1),
                      promote(in_sigs[0].dtype, in_sigs[1].dtype))

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        u = np.asarray(inputs[0])
        k = np.asarray(inputs[1])
        h, w = u.shape
        kh, kw = k.shape
        out = np.zeros((h + kh - 1, w + kw - 1),
                       dtype=np.result_type(u, k, np.float64))
        for r in range(kh):
            for c in range(kw):
                out[r:r + h, c:c + w] += k[r, c] * u
        return out

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        if out_range.is_empty:
            return [IndexSet.empty(), IndexSet.empty()]
        (h, w), (kh, kw) = _dims(in_sigs[0]), _dims(in_sigs[1])
        out_region = Region(out_sig.shape, out_range)
        rows = out_region.rows_touched().dilate(kh - 1, 0).clamp(0, h)
        cols = out_region.cols_touched().dilate(kw - 1, 0).clamp(0, w)
        data = Region.from_rows_cols((h, w), rows, cols)
        return [data.indices, IndexSet.full(kh * kw)]

    # -- lowering -------------------------------------------------------------

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        (h, w) = _dims(Signal(ctx.in_shapes[0], ctx.in_dtypes[0]))
        (kh, kw) = _dims(Signal(ctx.in_shapes[1], ctx.in_dtypes[1]))
        if ctx.style.boundary_judgments:
            self._emit_boundary_judgments(ctx, h, w, kh, kw)
        else:
            self._emit_zoned(ctx, h, w, kh, kw)

    def _accumulate(self, ctx: EmitCtx, out_idx: Expr, row: Expr, col: Expr,
                    r: str, c: str, w: int, kw: int) -> Assign:
        u, k = ctx.inputs
        u_idx = add(mul(sub(row, Var(r)), const(w)), sub(col, Var(c)))
        k_idx = add(mul(Var(r), const(kw)), Var(c))
        return Assign(ctx.output, out_idx,
                      add(load(ctx.output, out_idx),
                          mul(load(k, k_idx), load(u, u_idx))))

    def _emit_boundary_judgments(self, ctx: EmitCtx, h: int, w: int,
                                 kh: int, kw: int) -> None:
        """Embedded Coder shape: guard every tap of every output pixel."""
        out_w = w + kw - 1

        def body(index: Expr):
            row = binop("/", index, const(out_w))
            col = binop("%", index, const(out_w))
            r, c = ctx.fresh("r"), ctx.fresh("c")
            u_row, u_col = sub(row, Var(r)), sub(col, Var(c))
            guard = binop("&&",
                          binop("&&", binop(">=", u_row, const(0)),
                                binop("<", u_row, const(h))),
                          binop("&&", binop(">=", u_col, const(0)),
                                binop("<", u_col, const(w))))
            inner = For(r, 0, kh, [For(c, 0, kw, [If(guard, [
                self._accumulate(ctx, index, row, col, r, c, w, kw),
            ])], vectorizable=False)], vectorizable=False)
            return [Assign(ctx.output, index, const(0.0)), inner]
        ctx.loops_over_range(body, vectorizable=False)

    def _emit_zoned(self, ctx: EmitCtx, h: int, w: int,
                    kh: int, kw: int) -> None:
        """Branch-free zoned lowering.

        Output pixels whose kernel window lies fully inside the image
        (rows [kh-1, h), cols [kw-1, w)) get a dense 2-D tap loop; border
        pixels get individually bounded tap loops — no guards anywhere.
        """
        out_w = w + kw - 1
        interior = Region.from_rows_cols(
            ctx.out_shape, IndexSet.interval(kh - 1, h),
            IndexSet.interval(kw - 1, w))
        dense = ctx.out_range & interior.indices
        border = ctx.out_range - dense

        saved = ctx.out_range
        ctx.out_range = dense

        def dense_body(index: Expr):
            row = binop("/", index, const(out_w))
            col = binop("%", index, const(out_w))
            r, c = ctx.fresh("r"), ctx.fresh("c")
            inner_c = For(c, 0, kw, [
                self._accumulate(ctx, index, row, col, r, c, w, kw),
            ], vectorizable=True)
            if ctx.style.forced_simd and kw >= ctx.style.simd_min_width:
                inner_c.forced_simd = True
            inner = For(r, 0, kh, [inner_c], vectorizable=False)
            return [Assign(ctx.output, index, const(0.0)), inner]
        ctx.loops_over_range(dense_body, vectorizable=False)

        # Border pixels: exact static tap bounds per pixel.
        ctx.out_range = saved
        for flat in border:
            row, col = flat // out_w, flat % out_w
            r_lo, r_hi = max(0, row - h + 1), min(row, kh - 1) + 1
            c_lo, c_hi = max(0, col - w + 1), min(col, kw - 1) + 1
            ctx.emit(Assign(ctx.output, const(flat), const(0.0)))
            r, c = ctx.fresh("br"), ctx.fresh("bc")
            ctx.emit(For(r, r_lo, r_hi, [For(c, c_lo, c_hi, [
                self._accumulate(ctx, const(flat), const(row), const(col),
                                 r, c, w, kw),
            ], vectorizable=False)], vectorizable=False))
