"""Block property library: the per-type contract every block implements.

The paper's FRODO "crafts a specialized block property library tailored to
the block type and parameters" (§3.1).  Each entry here is a
:class:`BlockSpec` that captures everything the pipeline needs to know
about one ``BlockType``:

* **validation** — parameter and arity checking;
* **static typing** — output shape/dtype from input signals;
* **reference semantics** — a numpy implementation used by the simulator
  (the ground truth for the random-testing correctness comparison);
* **I/O mapping** — which input elements are required to produce a given
  set of output elements (the heart of redundancy elimination);
* **code emission** — element-level lowering to the loop IR, honoring the
  calculation range the generator decided.

Specs are registered in a global registry keyed by ``block_type``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.intervals import IndexSet, shape_size
from repro.errors import ValidationError
from repro.ir.build import EmitCtx
from repro.model.block import Block

# -- signals -----------------------------------------------------------------

_DTYPE_RANK = {"bool": 0, "uint32": 1, "int64": 2, "float64": 3, "complex128": 4}


@dataclass(frozen=True)
class Signal:
    """Static type of one signal: shape (row-major) and element dtype."""

    shape: tuple[int, ...]
    dtype: str = "float64"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        if self.dtype not in _DTYPE_RANK:
            raise ValidationError(f"unsupported dtype {self.dtype!r}")

    @property
    def size(self) -> int:
        return shape_size(self.shape)

    @property
    def is_scalar(self) -> bool:
        return self.size == 1

    def full_range(self) -> IndexSet:
        return IndexSet.full(self.size)


def promote(*dtypes: str) -> str:
    """Numeric promotion across input dtypes (C-like lattice)."""
    best = "bool"
    for dtype in dtypes:
        if dtype not in _DTYPE_RANK:
            raise ValidationError(f"unsupported dtype {dtype!r}")
        if _DTYPE_RANK[dtype] > _DTYPE_RANK[best]:
            best = dtype
    return best


def broadcast_shape(block_name: str, shapes: Sequence[tuple[int, ...]]) -> tuple[int, ...]:
    """Simulink-style scalar expansion: scalars broadcast, otherwise shapes
    must agree exactly."""
    non_scalar = [s for s in shapes if shape_size(s) != 1]
    if not non_scalar:
        return shapes[0] if shapes else ()
    first = non_scalar[0]
    for shape in non_scalar[1:]:
        if shape != first:
            raise ValidationError(
                f"block {block_name!r}: incompatible input shapes "
                f"{first} vs {shape}"
            )
    return first


# -- the spec contract ----------------------------------------------------------

class BlockSpec:
    """Base class for block property library entries."""

    #: The ``BlockType`` string this spec implements.
    type_name: str = ""
    #: Inclusive input arity bounds (``None`` = unbounded above).
    min_inputs: int = 1
    max_inputs: Optional[int] = 1
    #: Stateful blocks carry values across steps (UnitDelay, Delay).
    is_stateful: bool = False
    #: Source blocks have no inputs and provide data (Inport, Constant).
    is_source: bool = False
    #: Sink blocks terminate signals (Outport, Terminator).
    is_sink: bool = False
    #: Data-truncation blocks select segments of their input (paper §3.2).
    is_truncation: bool = False

    # -- validation ----------------------------------------------------------

    def validate(self, block: Block, in_sigs: Sequence[Signal]) -> None:
        """Check arity and parameters; raise ValidationError on problems."""
        n = len(in_sigs)
        if n < self.min_inputs or (self.max_inputs is not None and n > self.max_inputs):
            upper = "∞" if self.max_inputs is None else str(self.max_inputs)
            raise ValidationError(
                f"block {block.name!r} ({self.type_name}) expects between "
                f"{self.min_inputs} and {upper} inputs, got {n}"
            )

    # -- static typing ----------------------------------------------------------

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        """Output signal from input signals (single-output discipline)."""
        raise NotImplementedError

    # -- reference semantics ------------------------------------------------------

    def step(self, block: Block, inputs: Sequence[np.ndarray],
             state: dict[str, np.ndarray]) -> np.ndarray:
        """Simulate one step; stateful specs read/update ``state[block.name]``."""
        raise NotImplementedError

    def initial_state(self, block: Block, in_sigs: Sequence[Signal],
                      out_sig: Signal) -> Optional[np.ndarray]:
        """Initial state array for stateful blocks, else None."""
        return None

    # -- I/O mapping (paper §3.1, Figure 3) ------------------------------------------

    def input_ranges(self, block: Block, out_range: IndexSet,
                     in_sigs: Sequence[Signal], out_sig: Signal) -> list[IndexSet]:
        """Input elements required to produce ``out_range`` of the output.

        The default is maximally conservative: every input is needed in
        full whenever any output element is demanded.  Truncation and
        structured blocks override this with their precise mapping.
        """
        if out_range.is_empty:
            return [IndexSet.empty() for _ in in_sigs]
        return [sig.full_range() for sig in in_sigs]

    def required_output_range(self, block: Block, demanded: IndexSet,
                              out_sig: Signal) -> IndexSet:
        """Widen the demanded range when internal dependencies force it.

        Most blocks compute exactly what is demanded.  Scan-style blocks
        (CumulativeSum) must also compute earlier elements their recurrence
        depends on.
        """
        return demanded

    # -- code emission ------------------------------------------------------------------

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        """Lower the block over ``ctx.out_range`` into ``ctx.program``."""
        raise NotImplementedError

    def emit_update(self, block: Block, ctx: EmitCtx) -> None:
        """End-of-step state update for stateful blocks (no-op otherwise)."""

    def constant_value(self, block: Block) -> Optional[np.ndarray]:
        """For constant-like sources: the compile-time value, else None."""
        return None


# -- registry ----------------------------------------------------------------------------

_REGISTRY: dict[str, BlockSpec] = {}


def register(spec_cls: type[BlockSpec]) -> type[BlockSpec]:
    """Class decorator: instantiate and register a spec by its type name."""
    spec = spec_cls()
    if not spec.type_name:
        raise ValidationError(f"{spec_cls.__name__} has no type_name")
    if spec.type_name in _REGISTRY:
        raise ValidationError(f"duplicate spec for {spec.type_name!r}")
    _REGISTRY[spec.type_name] = spec
    return spec_cls


def get_spec(block_type: str) -> BlockSpec:
    try:
        return _REGISTRY[block_type]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValidationError(
            f"no block spec registered for {block_type!r}; known: {known}"
        ) from None


def spec_for(block: Block) -> BlockSpec:
    return get_spec(block.block_type)


def registered_types() -> list[str]:
    return sorted(_REGISTRY)


# -- shared mapping helpers ------------------------------------------------------------------

def elementwise_input_ranges(out_range: IndexSet,
                             in_sigs: Sequence[Signal]) -> list[IndexSet]:
    """Identity mapping with scalar broadcast: vectors need exactly the
    demanded elements; scalars are needed whenever anything is demanded."""
    result: list[IndexSet] = []
    for sig in in_sigs:
        if sig.is_scalar:
            result.append(IndexSet.full(1) if out_range else IndexSet.empty())
        else:
            result.append(out_range)
    return result


def broadcast_arrays(inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Flatten inputs and broadcast scalars to the common size."""
    flats = [np.asarray(a).ravel() for a in inputs]
    sizes = {f.size for f in flats}
    common = max(sizes)
    return [np.full(common, f[0]) if f.size == 1 and common > 1 else f
            for f in flats]


ExprFn = Callable[[list], object]
