"""Elementwise math blocks.

All blocks here share the elementwise discipline: output element ``i``
depends only on input element ``i`` (with Simulink scalar expansion), so
their I/O mapping is the identity and their calculation range equals the
demanded range.  They differ only in the per-element expression.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import (
    BlockSpec, Signal, broadcast_arrays, broadcast_shape,
    elementwise_input_ranges, promote, register,
)
from repro.core.intervals import IndexSet
from repro.errors import ValidationError
from repro.ir.build import (
    EmitCtx, add, binop, call, const, div, load, mul, neg, select, sub,
)
from repro.ir.ops import Assign, Expr, For, If, Var
from repro.model.block import Block


class ElementwiseSpec(BlockSpec):
    """Shared machinery for elementwise blocks."""

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        shape = broadcast_shape(block.name, [s.shape for s in in_sigs])
        return Signal(shape, self.out_dtype(block, [s.dtype for s in in_sigs]))

    def out_dtype(self, block: Block, in_dtypes: Sequence[str]) -> str:
        return promote(*in_dtypes)

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        """The per-element IR expression."""
        raise NotImplementedError

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        """The reference numpy semantics on broadcast flat arrays."""
        raise NotImplementedError

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        arrays = broadcast_arrays(inputs)
        shape = broadcast_shape(block.name, [np.asarray(a).shape for a in inputs])
        dtype = self.out_dtype(block, [str(np.asarray(a).dtype) for a in inputs])
        return np.asarray(self.compute(block, arrays), dtype=dtype).reshape(shape)

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        return elementwise_input_ranges(out_range, in_sigs)

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        ctx.elementwise(lambda operands: self.expr(block, operands))


@register
class AddSpec(ElementwiseSpec):
    """N-ary add/subtract; the ``signs`` parameter is a ``"+-+"`` string."""

    type_name = "Add"
    min_inputs = 1
    max_inputs = None

    def _signs(self, block: Block, arity: int) -> str:
        signs = str(block.param("signs", "+" * arity))
        if len(signs) != arity or set(signs) - {"+", "-"}:
            raise ValidationError(
                f"Add {block.name!r}: signs {signs!r} do not match arity {arity}"
            )
        return signs

    def validate(self, block: Block, in_sigs: Sequence[Signal]) -> None:
        super().validate(block, in_sigs)
        self._signs(block, len(in_sigs))

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        signs = self._signs(block, len(operands))
        result = operands[0] if signs[0] == "+" else neg(operands[0])
        for sign, operand in zip(signs[1:], operands[1:]):
            result = add(result, operand) if sign == "+" else sub(result, operand)
        return result

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        signs = self._signs(block, len(arrays))
        result = arrays[0].copy() if signs[0] == "+" else -arrays[0]
        for sign, array in zip(signs[1:], arrays[1:]):
            result = result + array if sign == "+" else result - array
        return result


@register
class ProductSpec(ElementwiseSpec):
    """N-ary elementwise product."""

    type_name = "Product"
    min_inputs = 1
    max_inputs = None

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        result = operands[0]
        for operand in operands[1:]:
            result = mul(result, operand)
        return result

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        result = arrays[0].copy()
        for array in arrays[1:]:
            result = result * array
        return result


@register
class DivideSpec(ElementwiseSpec):
    """Elementwise division ``a / b``."""

    type_name = "Divide"
    min_inputs = 2
    max_inputs = 2

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return div(operands[0], operands[1])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return arrays[0] / arrays[1]


@register
class GainSpec(ElementwiseSpec):
    """Scalar gain ``y = k * u``."""

    type_name = "Gain"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        float(block.require_param("gain"))

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return mul(const(float(block.require_param("gain"))), operands[0])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return float(block.require_param("gain")) * arrays[0]

    def out_dtype(self, block, in_dtypes):
        return promote("float64", *in_dtypes)


@register
class BiasSpec(ElementwiseSpec):
    """Scalar bias ``y = u + b``."""

    type_name = "Bias"

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return add(operands[0], const(float(block.require_param("bias"))))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return arrays[0] + float(block.require_param("bias"))

    def out_dtype(self, block, in_dtypes):
        return promote("float64", *in_dtypes)


@register
class AbsSpec(ElementwiseSpec):
    """Absolute value (real signals)."""

    type_name = "Abs"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        if in_sigs and in_sigs[0].dtype == "complex128":
            raise ValidationError(
                f"Abs {block.name!r}: complex magnitude is not supported; "
                "use Conj/Product composition"
            )

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return call("fabs", operands[0])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return np.abs(arrays[0])


@register
class UnaryMinusSpec(ElementwiseSpec):
    type_name = "UnaryMinus"

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return neg(operands[0])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return -arrays[0]


@register
class SqrtSpec(ElementwiseSpec):
    type_name = "Sqrt"

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return call("sqrt", operands[0])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sqrt(arrays[0])  # NaN for negative inputs, like C


_MATH_FUNCTIONS = {"exp", "log", "square", "reciprocal"}


@register
class MathSpec(ElementwiseSpec):
    """Simulink Math Function block: exp / log / square / reciprocal."""

    type_name = "Math"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        fn = str(block.require_param("function"))
        if fn not in _MATH_FUNCTIONS:
            raise ValidationError(
                f"Math {block.name!r}: unknown function {fn!r} "
                f"(supported: {sorted(_MATH_FUNCTIONS)})"
            )

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        fn = str(block.require_param("function"))
        u = operands[0]
        if fn == "square":
            return mul(u, u)
        if fn == "reciprocal":
            return div(const(1.0), u)
        return call(fn, u)

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        fn = str(block.require_param("function"))
        u = arrays[0]
        if fn == "square":
            return u * u
        if fn == "reciprocal":
            return 1.0 / u
        return {"exp": np.exp, "log": np.log}[fn](u)

    def out_dtype(self, block, in_dtypes):
        return promote("float64", *in_dtypes)


_TRIG_FUNCTIONS = {"sin", "cos", "tan"}


@register
class TrigonometrySpec(ElementwiseSpec):
    type_name = "Trigonometry"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        fn = str(block.param("function", "sin"))
        if fn not in _TRIG_FUNCTIONS:
            raise ValidationError(
                f"Trigonometry {block.name!r}: unknown function {fn!r}"
            )

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return call(str(block.param("function", "sin")), operands[0])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        fn = str(block.param("function", "sin"))
        return {"sin": np.sin, "cos": np.cos, "tan": np.tan}[fn](arrays[0])

    def out_dtype(self, block, in_dtypes):
        return "float64"


@register
class MinMaxSpec(ElementwiseSpec):
    """Elementwise min or max across N inputs."""

    type_name = "MinMax"
    min_inputs = 2
    max_inputs = None

    def _fn(self, block: Block) -> str:
        fn = str(block.param("function", "min"))
        if fn not in ("min", "max"):
            raise ValidationError(f"MinMax {block.name!r}: function must be min/max")
        return fn

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        fn = "fmin" if self._fn(block) == "min" else "fmax"
        result = operands[0]
        for operand in operands[1:]:
            result = call(fn, result, operand)
        return result

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        fn = np.minimum if self._fn(block) == "min" else np.maximum
        result = arrays[0]
        for array in arrays[1:]:
            result = fn(result, array)
        return result


@register
class SignSpec(ElementwiseSpec):
    type_name = "Sign"

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        u = operands[0]
        return select(binop(">", u, const(0.0)), const(1.0),
                      select(binop("<", u, const(0.0)), const(-1.0), const(0.0)))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return np.sign(arrays[0])

    def out_dtype(self, block, in_dtypes):
        return "float64"


@register
class SaturationSpec(ElementwiseSpec):
    """Clamp to ``[lower, upper]``."""

    type_name = "Saturation"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        lower = float(block.require_param("lower"))
        upper = float(block.require_param("upper"))
        if lower > upper:
            raise ValidationError(
                f"Saturation {block.name!r}: lower {lower} > upper {upper}"
            )

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        lower = float(block.require_param("lower"))
        upper = float(block.require_param("upper"))
        return call("fmin", call("fmax", operands[0], const(lower)), const(upper))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return np.clip(arrays[0],
                       float(block.require_param("lower")),
                       float(block.require_param("upper")))


_RELATIONAL_OPS = {">", ">=", "<", "<=", "==", "!="}


@register
class RelationalSpec(ElementwiseSpec):
    """Comparison producing 0.0/1.0."""

    type_name = "Relational"
    min_inputs = 2
    max_inputs = 2

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        self._op(block)

    def _op(self, block: Block) -> str:
        op = str(block.param("op", ">"))
        if op not in _RELATIONAL_OPS:
            raise ValidationError(f"Relational {block.name!r}: bad op {op!r}")
        return op

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return select(binop(self._op(block), operands[0], operands[1]),
                      const(1.0), const(0.0))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        a, b = arrays
        op = self._op(block)
        table = {
            ">": a > b, ">=": a >= b, "<": a < b,
            "<=": a <= b, "==": a == b, "!=": a != b,
        }
        return table[op].astype("float64")

    def out_dtype(self, block, in_dtypes):
        return "float64"


@register
class ConjSpec(ElementwiseSpec):
    """Complex conjugate."""

    type_name = "Conj"

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return call("conj", operands[0])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return np.conj(arrays[0])


@register
class SwitchSpec(ElementwiseSpec):
    """Threshold switch: ``out = in0 if in1 >= threshold else in2``.

    Inputs are (data-on, control, data-off).  When the control signal is
    scalar and the generator asks for branch structuring (DFSynth's
    specialty, also adopted by FRODO), the switch lowers to an ``if`` around
    whole copy loops; otherwise it lowers to a per-element ternary.
    """

    type_name = "Switch"
    min_inputs = 3
    max_inputs = 3

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        data_shapes = [in_sigs[0].shape, in_sigs[2].shape]
        shape = broadcast_shape(block.name, data_shapes)
        return Signal(shape, promote(in_sigs[0].dtype, in_sigs[2].dtype))

    def _threshold(self, block: Block) -> float:
        return float(block.param("threshold", 0.0))

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        on, control, off = [np.asarray(a) for a in inputs]
        cond = control >= self._threshold(block)
        on_b, off_b = np.broadcast_arrays(on.ravel(), off.ravel())
        cond_b = np.broadcast_to(cond.ravel(), on_b.shape)
        return np.where(cond_b, on_b, off_b)

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        ranges: list[IndexSet] = []
        for port, sig in enumerate(in_sigs):
            if sig.is_scalar:
                ranges.append(IndexSet.full(1) if out_range else IndexSet.empty())
            elif port == 1:
                # Vector control: each output element tests its own control
                # element, so the control demand mirrors the output demand.
                ranges.append(out_range)
            else:
                ranges.append(out_range)
        return ranges

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        threshold = const(self._threshold(block))
        control_scalar = ctx.in_size(1) == 1
        if ctx.style.branch_structured and control_scalar:
            cond = binop(">=", load(ctx.inputs[1], 0), threshold)
            then_branch: list = []
            else_branch: list = []
            for start, stop in ctx.out_range.runs():
                for branch, src in ((then_branch, ctx.inputs[0]),
                                    (else_branch, ctx.inputs[2])):
                    src_scalar = ctx.in_size((0 if src == ctx.inputs[0] else 2)) == 1
                    loop_var = ctx.fresh("s")
                    idx = Var(loop_var)
                    body = [Assign(ctx.output, idx,
                                   load(src, const(0) if src_scalar else idx))]
                    branch.append(For(loop_var, start, stop, body, vectorizable=True))
            ctx.emit(If(cond, then_branch, else_branch))
            return

        def expr_for(operands: list[Expr]) -> Expr:
            on, control, off = operands
            return select(binop(">=", control, threshold), on, off)
        ctx.elementwise(expr_for)
