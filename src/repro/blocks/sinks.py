"""Sink blocks: Outport and Terminator."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import BlockSpec, Signal, register
from repro.core.intervals import IndexSet
from repro.ir.build import EmitCtx
from repro.model.block import Block


@register
class OutportSpec(BlockSpec):
    """Model output boundary.

    An Outport demands its input in full — every element of a declared
    model output is observable, so nothing upstream of it alone may be
    eliminated.  Code-wise it copies the feeding buffer into the program's
    output buffer.
    """

    type_name = "Outport"
    min_inputs = 1
    max_inputs = 1
    is_sink = True

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        return in_sigs[0]

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        return np.asarray(inputs[0]).copy()

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        return [out_range]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        ctx.copy_range(ctx.inputs[0])


@register
class TerminatorSpec(BlockSpec):
    """Explicitly discarded signal.

    A Terminator demands nothing of its input: any computation feeding
    only Terminators is redundant by construction.  FRODO's range
    determination therefore eliminates it; the baselines still compute it
    (they translate blocks independently of consumption).
    """

    type_name = "Terminator"
    min_inputs = 1
    max_inputs = 1
    is_sink = True

    def infer(self, block: Block, in_sigs: Sequence[Signal]) -> Signal:
        return in_sigs[0]

    def step(self, block: Block, inputs: Sequence[np.ndarray], state) -> np.ndarray:
        return np.asarray(inputs[0]).copy()

    def input_ranges(self, block, out_range, in_sigs, out_sig):
        return [IndexSet.empty()]

    def emit(self, block: Block, ctx: EmitCtx) -> None:
        """Terminators generate no code."""
