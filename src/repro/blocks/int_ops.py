"""Integer/bitwise blocks (uint32 domain) used by the Decryption model."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.base import Signal, register
from repro.blocks.math_ops import ElementwiseSpec
from repro.errors import ValidationError
from repro.ir.build import binop, const
from repro.ir.ops import Expr
from repro.model.block import Block

_BITWISE_OPS = {"XOR": "^", "AND": "&", "OR": "|"}


def _require_uint32(block: Block, in_sigs: Sequence[Signal]) -> None:
    for sig in in_sigs:
        if sig.dtype != "uint32":
            raise ValidationError(
                f"{block.block_type} {block.name!r} requires uint32 inputs, "
                f"got {sig.dtype}"
            )


@register
class BitwiseSpec(ElementwiseSpec):
    """Bitwise XOR / AND / OR on uint32 signals."""

    type_name = "Bitwise"
    min_inputs = 2
    max_inputs = 2

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        _require_uint32(block, in_sigs)
        op = str(block.param("op", "XOR"))
        if op not in _BITWISE_OPS:
            raise ValidationError(f"Bitwise {block.name!r}: unknown op {op!r}")

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return binop(_BITWISE_OPS[str(block.param("op", "XOR"))],
                     operands[0], operands[1])

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        op = str(block.param("op", "XOR"))
        a, b = (arr.astype("uint32") for arr in arrays)
        fn = {"XOR": np.bitwise_xor, "AND": np.bitwise_and, "OR": np.bitwise_or}[op]
        return fn(a, b)

    def out_dtype(self, block, in_dtypes):
        return "uint32"


@register
class ShiftSpec(ElementwiseSpec):
    """Constant-amount logical shift on uint32 signals."""

    type_name = "Shift"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        _require_uint32(block, in_sigs)
        amount = int(block.require_param("amount"))
        if not 0 <= amount < 32:
            raise ValidationError(
                f"Shift {block.name!r}: amount {amount} outside [0, 32)"
            )
        direction = str(block.param("direction", "left"))
        if direction not in ("left", "right"):
            raise ValidationError(
                f"Shift {block.name!r}: direction must be left/right"
            )

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        amount = int(block.require_param("amount"))
        op = "<<" if str(block.param("direction", "left")) == "left" else ">>"
        return binop(op, operands[0], const(amount))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        amount = np.uint32(int(block.require_param("amount")))
        u = arrays[0].astype("uint32")
        if str(block.param("direction", "left")) == "left":
            return np.left_shift(u, amount)
        return np.right_shift(u, amount)

    def out_dtype(self, block, in_dtypes):
        return "uint32"


@register
class ModSpec(ElementwiseSpec):
    """Remainder by a positive constant divisor (uint32)."""

    type_name = "Mod"

    def validate(self, block, in_sigs):
        super().validate(block, in_sigs)
        _require_uint32(block, in_sigs)
        divisor = int(block.require_param("divisor"))
        if divisor <= 0:
            raise ValidationError(f"Mod {block.name!r}: divisor must be positive")

    def expr(self, block: Block, operands: list[Expr]) -> Expr:
        return binop("%", operands[0], const(int(block.require_param("divisor"))))

    def compute(self, block: Block, arrays: list[np.ndarray]) -> np.ndarray:
        return arrays[0].astype("uint32") % np.uint32(int(block.require_param("divisor")))

    def out_dtype(self, block, in_dtypes):
        return "uint32"
