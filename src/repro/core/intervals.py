"""Calculation-range algebra.

FRODO's central datatype is the *calculation range* of a block: the set of
output elements that downstream blocks actually consume (paper §3.2).  We
represent a range as an :class:`IndexSet` — a canonical union of disjoint,
sorted, half-open intervals over the flattened element indices of a signal.
:class:`Region` pairs an :class:`IndexSet` with the signal's shape so that
matrix blocks can reason in rows and columns while the rest of the pipeline
stays one-dimensional.

The representation is deliberately exact (no over-approximation): Algorithm 1
relies on ranges never being wider than what children require, and the
correctness argument relies on them never being narrower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


def _normalize(intervals: Iterable[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Sort, drop empty, and coalesce touching/overlapping intervals."""
    items = sorted((int(a), int(b)) for a, b in intervals if b > a)
    merged: list[tuple[int, int]] = []
    for start, stop in items:
        if merged and start <= merged[-1][1]:
            prev_start, prev_stop = merged[-1]
            merged[-1] = (prev_start, max(prev_stop, stop))
        else:
            merged.append((start, stop))
    return tuple(merged)


@dataclass(frozen=True)
class IndexSet:
    """A canonical union of disjoint half-open ``[start, stop)`` intervals.

    Instances are immutable and hashable; all operations return new sets.
    The canonical form guarantees that equal sets compare equal, which the
    fixed-point checks in range determination depend on.
    """

    intervals: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "intervals", _normalize(self.intervals))

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "IndexSet":
        """The empty range."""
        return cls(())

    @classmethod
    def full(cls, size: int) -> "IndexSet":
        """The complete range ``[0, size)``."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return cls(((0, size),)) if size else cls(())

    @classmethod
    def interval(cls, start: int, stop: int) -> "IndexSet":
        """A single interval ``[start, stop)`` (empty when ``stop <= start``)."""
        return cls(((start, stop),))

    @classmethod
    def point(cls, index: int) -> "IndexSet":
        """The singleton ``{index}``."""
        return cls(((index, index + 1),))

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "IndexSet":
        """Build from an arbitrary iterable of element indices."""
        return cls(tuple((i, i + 1) for i in set(indices)))

    @classmethod
    def from_slice(cls, sl: slice, size: int) -> "IndexSet":
        """Build from a Python slice interpreted against ``size`` elements."""
        start, stop, step = sl.indices(size)
        if step == 1:
            return cls.interval(start, stop)
        return cls.from_indices(range(start, stop, step))

    # -- queries -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def size(self) -> int:
        """Number of elements covered."""
        return sum(stop - start for start, stop in self.intervals)

    @property
    def span(self) -> tuple[int, int]:
        """The bounding interval ``(min, max_exclusive)``; ``(0, 0)`` if empty."""
        if not self.intervals:
            return (0, 0)
        return (self.intervals[0][0], self.intervals[-1][1])

    @property
    def is_contiguous(self) -> bool:
        """True when the set is empty or a single interval."""
        return len(self.intervals) <= 1

    @property
    def run_count(self) -> int:
        """Number of maximal consecutive runs (intervals)."""
        return len(self.intervals)

    def __contains__(self, index: int) -> bool:
        return any(start <= index < stop for start, stop in self.intervals)

    def __iter__(self) -> Iterator[int]:
        for start, stop in self.intervals:
            yield from range(start, stop)

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def runs(self) -> Iterator[tuple[int, int]]:
        """Iterate the maximal consecutive runs as ``(start, stop)`` pairs."""
        return iter(self.intervals)

    def covers(self, other: "IndexSet") -> bool:
        """True when every element of ``other`` is in ``self``."""
        return (other - self).is_empty

    def equals_full(self, size: int) -> bool:
        """True when the set is exactly ``[0, size)``."""
        return self.intervals == ((0, size),) if size else self.is_empty

    # -- algebra -----------------------------------------------------------

    def union(self, other: "IndexSet") -> "IndexSet":
        return IndexSet(self.intervals + other.intervals)

    __or__ = union

    def intersect(self, other: "IndexSet") -> "IndexSet":
        out: list[tuple[int, int]] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IndexSet(tuple(out))

    __and__ = intersect

    def difference(self, other: "IndexSet") -> "IndexSet":
        out: list[tuple[int, int]] = []
        for start, stop in self.intervals:
            cursor = start
            for o_start, o_stop in other.intervals:
                if o_stop <= cursor or o_start >= stop:
                    continue
                if o_start > cursor:
                    out.append((cursor, o_start))
                cursor = max(cursor, o_stop)
                if cursor >= stop:
                    break
            if cursor < stop:
                out.append((cursor, stop))
        return IndexSet(tuple(out))

    __sub__ = difference

    def shift(self, offset: int) -> "IndexSet":
        """Translate every index by ``offset``."""
        return IndexSet(tuple((a + offset, b + offset) for a, b in self.intervals))

    def clamp(self, lo: int, hi: int) -> "IndexSet":
        """Intersect with ``[lo, hi)``."""
        return self.intersect(IndexSet.interval(lo, hi))

    def dilate(self, left: int, right: int) -> "IndexSet":
        """Grow every interval by ``left`` before and ``right`` after.

        This is the pull-back of a sliding-window operator: if output index
        ``k`` reads inputs ``[k - left, k + right]``, the inputs required by
        an output range are its dilation.
        """
        if left < 0 or right < 0:
            raise ValueError("dilate amounts must be non-negative")
        return IndexSet(
            tuple((a - left, b + right) for a, b in self.intervals)
        )

    def map_indices(self, fn) -> "IndexSet":
        """Apply an index-to-index function to every element.

        Used by permutation-style I/O mappings (transpose, reshape in
        non-contiguous layouts).  Cost is linear in :attr:`size`, which is
        fine for the signal widths Simulink models use.
        """
        return IndexSet.from_indices(fn(i) for i in self)

    # -- presentation ------------------------------------------------------

    def __repr__(self) -> str:
        if not self.intervals:
            return "IndexSet.empty()"
        parts = ", ".join(f"[{a},{b})" for a, b in self.intervals)
        return f"IndexSet({parts})"

    def describe(self) -> str:
        """Human-readable inclusive description used in reports: ``[5, 54]``."""
        if not self.intervals:
            return "∅"
        return " ∪ ".join(f"[{a}, {b - 1}]" for a, b in self.intervals)


def shape_size(shape: Sequence[int]) -> int:
    """Number of elements in a (possibly scalar, ``()``) shape."""
    size = 1
    for dim in shape:
        size *= int(dim)
    return size


@dataclass(frozen=True)
class Region:
    """An :class:`IndexSet` interpreted against a concrete signal shape.

    Signals are stored flattened in row-major (C) order — exactly how the
    generated C code indexes them — so a region is an index set plus the
    shape needed to translate between flat indices and coordinates.
    """

    shape: tuple[int, ...]
    indices: IndexSet

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        lo, hi = self.indices.span
        if self.indices and (lo < 0 or hi > self.size_limit):
            raise ValueError(
                f"indices {self.indices} fall outside shape {self.shape}"
            )

    @property
    def size_limit(self) -> int:
        return shape_size(self.shape)

    @classmethod
    def full(cls, shape: Sequence[int]) -> "Region":
        shape = tuple(int(d) for d in shape)
        return cls(shape, IndexSet.full(shape_size(shape)))

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "Region":
        return cls(tuple(int(d) for d in shape), IndexSet.empty())

    @property
    def is_full(self) -> bool:
        return self.indices.equals_full(self.size_limit)

    @property
    def is_empty(self) -> bool:
        return self.indices.is_empty

    # -- 2-D helpers (row-major) ------------------------------------------

    def _dims2(self) -> tuple[int, int]:
        if len(self.shape) == 2:
            return self.shape
        if len(self.shape) == 1:
            return (1, self.shape[0])
        if len(self.shape) == 0:
            return (1, 1)
        raise ValueError(f"expected <=2-D shape, got {self.shape}")

    def rows_touched(self) -> IndexSet:
        """Set of row indices containing at least one selected element."""
        _, cols = self._dims2()
        return IndexSet.from_indices(i // cols for i in self.indices)

    def cols_touched(self) -> IndexSet:
        """Set of column indices containing at least one selected element."""
        _, cols = self._dims2()
        return IndexSet.from_indices(i % cols for i in self.indices)

    @classmethod
    def from_rows_cols(
        cls, shape: Sequence[int], rows: IndexSet, cols: IndexSet
    ) -> "Region":
        """Rectangular region: the cartesian product of row and column sets."""
        shape = tuple(int(d) for d in shape)
        if len(shape) == 1:
            n_rows, n_cols = 1, shape[0]
        else:
            n_rows, n_cols = shape
        rows = rows.clamp(0, n_rows)
        cols = cols.clamp(0, n_cols)
        intervals: list[tuple[int, int]] = []
        for r in rows:
            for c_start, c_stop in cols.runs():
                intervals.append((r * n_cols + c_start, r * n_cols + c_stop))
        return cls(shape, IndexSet(tuple(intervals)))
