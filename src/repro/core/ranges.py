"""Calculation range determination — Algorithm 1 of the paper.

Starting from the root (0-in-degree) blocks, the paper's recursion first
determines the calculation ranges of child blocks, then pulls the union of
the children's *input* demands back through the block's own I/O mapping.
That child-first recursion is demand-driven evaluation, implemented here as
memoized recursion over the dataflow graph:

* a block with no consumers keeps its full output range (everything it
  produces is observable);
* an Outport demands its input in full, a Terminator demands nothing;
* otherwise the block's demanded range is the union, over each consumer
  edge, of the consumer's required input range on that port;
* the block's *calculation* range may be widened beyond the demand by the
  spec (scan recurrences), and its input demands come from its I/O mapping
  evaluated at the calculation range.

Feedback loops (through delays) are resolved conservatively: if the
recursion re-enters a block that is still being determined, that block
keeps its full range.  This only ever *widens* ranges, so soundness is
preserved.

``direct_only=True`` is the ablation of the paper's first challenge: it
pulls demands back a single level (only directly connected consumers are
considered, each assumed to need its own full output), quantifying how much
of the win comes from recursive propagation through indirectly connected
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocks import spec_for
from repro.core.analysis import AnalyzedModel
from repro.core.intervals import IndexSet
from repro.errors import AnalysisError


@dataclass
class RangeResult:
    """Output of calculation range determination."""

    #: Calculation range per block (the elements its code must produce).
    output_range: dict[str, IndexSet] = field(default_factory=dict)
    #: Required input elements per (block, input port).
    input_demand: dict[tuple[str, int], IndexSet] = field(default_factory=dict)
    #: Blocks whose calculation range is strictly below their full range.
    optimizable: set[str] = field(default_factory=set)

    def range_of(self, block_name: str) -> IndexSet:
        return self.output_range[block_name]

    def eliminated_elements(self, analyzed: AnalyzedModel) -> int:
        """Total *computed* output elements Algorithm 1 removed.

        Sources (Inport/Constant) compute nothing, so their trimmed ranges
        do not count as eliminated work.
        """
        total = 0
        for name, rng in self.output_range.items():
            if spec_for(analyzed.block(name)).is_source:
                continue
            total += analyzed.signal_of(name).size - rng.size
        return total


def determine_ranges(analyzed: AnalyzedModel, *, direct_only: bool = False,
                     coalesce: bool = False) -> RangeResult:
    """Run Algorithm 1 on an analyzed model.

    ``coalesce=True`` widens every calculation range to its bounding
    interval *during propagation* — the paper's §5 mitigation for
    discontinuous ranges ("allocate a continuous memory space"): a single
    dense, vectorizable loop per block at the cost of some recomputed
    elements.  Widening inside the recursion keeps the result sound (the
    extra positions' inputs are computed too).
    """
    model = analyzed.model
    result = RangeResult()
    in_progress: set[str] = set()
    demanded: dict[str, IndexSet] = {}

    consumers: dict[str, list[tuple[str, int]]] = {name: [] for name in model.blocks}
    for conn in model.connections:
        consumers[conn.src].append((conn.dst, conn.dst_port))

    def input_demand_of(name: str, port: int) -> IndexSet:
        key = (name, port)
        if key not in result.input_demand:
            determine(name)
        if key not in result.input_demand:
            # Re-entered a block that is still being determined (feedback
            # loop): conservatively demand the producing signal in full.
            src, _ = analyzed.drivers[name][port]
            return analyzed.signal_of(src).full_range()
        return result.input_demand[key]

    def determine(name: str) -> IndexSet:
        """The paper's ``recursive(graph, mapping, range, block)``."""
        if name in result.output_range:
            return result.output_range[name]
        block = model[name]
        spec = spec_for(block)
        out_sig = analyzed.signal_of(name)

        if name in in_progress:
            # Feedback re-entry: keep the full range (sound widening).
            return out_sig.full_range()

        in_progress.add(name)
        children = consumers[name]
        if not children:
            demand = out_sig.full_range()
        else:
            demand = IndexSet.empty()
            for child, port in children:
                if direct_only:
                    child_block = model[child]
                    child_spec = spec_for(child_block)
                    child_sig = analyzed.signal_of(child)
                    child_in = child_spec.input_ranges(
                        child_block, child_sig.full_range(),
                        analyzed.input_signals(child), child_sig,
                    )
                    demand = demand | child_in[port]
                else:
                    demand = demand | input_demand_of(child, port)
        in_progress.discard(name)

        demanded[name] = demand
        calc = spec.required_output_range(block, demand, out_sig)
        if coalesce and calc:
            calc = IndexSet.interval(*calc.span)
        full = out_sig.full_range()
        if not full.covers(calc):
            raise AnalysisError(
                f"block {name!r}: calculation range {calc} exceeds the "
                f"output size {out_sig.size}"
            )
        result.output_range[name] = calc
        in_ranges = spec.input_ranges(
            block, calc, analyzed.input_signals(name), out_sig,
        )
        if len(in_ranges) != len(analyzed.drivers[name]):
            raise AnalysisError(
                f"block {name!r}: I/O mapping returned {len(in_ranges)} input "
                f"ranges for {len(analyzed.drivers[name])} inputs"
            )
        for port, rng in enumerate(in_ranges):
            result.input_demand[(name, port)] = rng
        if calc != full and not spec.is_source and not spec.is_sink:
            result.optimizable.add(name)
        return calc

    # Paper lines 2-11: find roots, recurse from each; demand-driven
    # evaluation makes the visit order irrelevant, but we follow the
    # paper and seed from the roots, then sweep any block a root cannot
    # reach (disconnected components).
    for root in model.root_blocks():
        determine(root.name)
    for name in model.blocks:
        determine(name)
    return result


def determine_ranges_worklist(analyzed: AnalyzedModel, *,
                              coalesce: bool = False,
                              max_passes: int = 10_000) -> RangeResult:
    """Fixed-point (worklist) formulation of Algorithm 1.

    Equivalent to the paper's child-first recursion on DAGs (asserted by
    the property suite), but iterates demands to a fixed point instead of
    recursing — immune to Python's recursion limit on very deep graphs
    and naturally convergent on feedback loops (demands only grow, the
    lattice is finite).  On cyclic graphs it can be *more precise* than
    the recursive version's full-range widening.
    """
    model = analyzed.model
    result = RangeResult()

    consumers: dict[str, list[tuple[str, int]]] = {name: [] for name in model.blocks}
    for conn in model.connections:
        consumers[conn.src].append((conn.dst, conn.dst_port))

    demanded: dict[str, IndexSet] = {}
    for name in model.blocks:
        sig = analyzed.signal_of(name)
        demanded[name] = sig.full_range() if not consumers[name] \
            else IndexSet.empty()

    def refresh(name: str) -> bool:
        """Recompute one block's calc range + input demands; True if grown."""
        block = model[name]
        spec = spec_for(block)
        out_sig = analyzed.signal_of(name)
        calc = spec.required_output_range(block, demanded[name], out_sig)
        if coalesce and calc:
            calc = IndexSet.interval(*calc.span)
        if result.output_range.get(name) == calc:
            return False
        result.output_range[name] = calc
        in_ranges = spec.input_ranges(
            block, calc, analyzed.input_signals(name), out_sig)
        for port, rng in enumerate(in_ranges):
            result.input_demand[(name, port)] = rng
        return True

    worklist = list(model.blocks)
    passes = 0
    while worklist:
        passes += 1
        if passes > max_passes * max(len(model.blocks), 1):
            raise AnalysisError(
                f"range fixed point did not converge in model {model.name!r}"
            )
        name = worklist.pop()
        if not refresh(name):
            continue
        # The block's input demands changed: producers may need more.
        for port, (src, _) in enumerate(analyzed.drivers[name]):
            addition = result.input_demand[(name, port)]
            merged = demanded[src] | addition
            if merged != demanded[src]:
                demanded[src] = merged
                worklist.append(src)

    for name in model.blocks:
        if name not in result.output_range:
            refresh(name)
        sig = analyzed.signal_of(name)
        spec = spec_for(model[name])
        calc = result.output_range[name]
        if not sig.full_range().covers(calc):
            raise AnalysisError(
                f"block {name!r}: calculation range {calc} exceeds the "
                f"output size {sig.size}"
            )
        if calc != sig.full_range() and not spec.is_source and not spec.is_sink:
            result.optimizable.add(name)
    return result


def full_ranges(analyzed: AnalyzedModel) -> RangeResult:
    """The no-optimization policy used by the baseline generators."""
    result = RangeResult()
    for name in analyzed.model.blocks:
        sig = analyzed.signal_of(name)
        result.output_range[name] = sig.full_range()
        block = analyzed.block(name)
        spec = spec_for(block)
        in_ranges = spec.input_ranges(
            block, sig.full_range(), analyzed.input_signals(name), sig,
        )
        for port, rng in enumerate(in_ranges):
            result.input_demand[(name, port)] = rng
    return result
