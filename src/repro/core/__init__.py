"""FRODO's core contribution: range algebra, model analysis, Algorithm 1.

``analysis`` and ``ranges`` depend on the block property library, which in
turn depends on ``core.intervals`` — so those two modules are exported
lazily (PEP 562) to keep the import graph acyclic.
"""

from repro.core.intervals import IndexSet, Region, shape_size  # noqa: F401

_LAZY = {
    "AnalyzedModel": ("repro.core.analysis", "AnalyzedModel"),
    "analyze": ("repro.core.analysis", "analyze"),
    "RangeResult": ("repro.core.ranges", "RangeResult"),
    "determine_ranges": ("repro.core.ranges", "determine_ranges"),
    "full_ranges": ("repro.core.ranges", "full_ranges"),
}

__all__ = ["IndexSet", "Region", "shape_size", *_LAZY]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
