"""Model analysis (paper §3.1): dataflow graph construction, static
typing, and topological scheduling.

:func:`analyze` flattens subsystems, validates every connection (port
arity, no double-driven or missing ports), infers each block's output
signal (shape + dtype) through the block property library, and computes
the translation schedule.  Stateful blocks (delays) act as schedule
sources: their outputs are available at step start, and their inputs are
consumed by end-of-step state updates, which is how feedback loops stay
schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocks import Signal, spec_for
from repro.errors import AnalysisError, ValidationError
from repro.model.block import Block
from repro.model.graph import Model


@dataclass
class AnalyzedModel:
    """A flattened model with its static types and translation schedule."""

    model: Model
    signals: dict[str, Signal]
    schedule: list[str]
    #: Per block: list of (src block, src port) ordered by input port index.
    drivers: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    def signal_of(self, block_name: str) -> Signal:
        return self.signals[block_name]

    def block(self, name: str) -> Block:
        return self.model[name]

    def input_signals(self, block_name: str) -> list[Signal]:
        return [self.signals[src] for src, _ in self.drivers[block_name]]

    @property
    def inports(self) -> list[Block]:
        return [self.model[name] for name in self.schedule
                if self.model[name].block_type == "Inport"]

    @property
    def outports(self) -> list[Block]:
        return [self.model[name] for name in self.schedule
                if self.model[name].block_type == "Outport"]


def _ordered_drivers(model: Model, block: Block) -> list[tuple[str, int]]:
    """Drivers of each input port 0..k-1; reject gaps and extras."""
    inputs = model.inputs_of(block.name)
    if not inputs:
        return []
    max_port = max(inputs)
    missing = [p for p in range(max_port + 1) if p not in inputs]
    if missing:
        raise ValidationError(
            f"block {block.name!r} has undriven input port(s) {missing}"
        )
    return [inputs[p] for p in range(max_port + 1)]


def _topo_order(model: Model, break_state_inputs: bool) -> list[str]:
    """Kahn's algorithm; optionally ignore edges into stateful blocks."""
    in_deg: dict[str, int] = {name: 0 for name in model.blocks}
    succ: dict[str, list[str]] = {name: [] for name in model.blocks}
    for conn in model.connections:
        if break_state_inputs and spec_for(model[conn.dst]).is_stateful:
            continue
        in_deg[conn.dst] += 1
        succ[conn.src].append(conn.dst)
    ready = sorted(name for name, deg in in_deg.items() if deg == 0)
    order: list[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for nxt in succ[name]:
            in_deg[nxt] -= 1
            if in_deg[nxt] == 0:
                ready.append(nxt)
        ready.sort()
    if len(order) != len(model.blocks):
        cyclic = sorted(set(model.blocks) - set(order))
        raise AnalysisError(
            f"model {model.name!r} has an algebraic loop through {cyclic}; "
            "insert a UnitDelay to break it"
        )
    return order


def _infer_signals(model: Model, schedule: list[str],
                   drivers: dict[str, list[tuple[str, int]]]) -> dict[str, Signal]:
    """Type inference along a delay-broken schedule.

    Delays scheduled before their producers temporarily take their shape
    from explicit ``shape``/``dtype`` parameters; a final pass confirms the
    producer's signal matches.
    """
    signals: dict[str, Signal] = {}
    deferred: list[str] = []
    for name in schedule:
        block = model[name]
        spec = spec_for(block)
        if spec.is_stateful and any(src not in signals for src, _ in drivers[name]):
            shape = block.param("shape")
            if shape is None:
                raise AnalysisError(
                    f"stateful block {name!r} closes a feedback loop and "
                    "needs explicit shape/dtype parameters"
                )
            signals[name] = Signal(tuple(shape), str(block.param("dtype", "float64")))
            deferred.append(name)
            continue
        in_sigs = [signals[src] for src, _ in drivers[name]]
        spec.validate(block, in_sigs)
        signals[name] = spec.infer(block, in_sigs)
    for name in deferred:
        block = model[name]
        in_sigs = [signals[src] for src, _ in drivers[name]]
        spec_for(block).validate(block, in_sigs)
        inferred = spec_for(block).infer(block, in_sigs)
        if inferred != signals[name]:
            raise ValidationError(
                f"delay {name!r}: declared signal {signals[name]} disagrees "
                f"with driving signal {inferred}"
            )
    return signals


def analyze(model: Model) -> AnalyzedModel:
    """Flatten, validate, type, and schedule a model."""
    flat = model.flatten()
    for i, block in enumerate(flat.blocks.values()):
        block.sid = i + 1
    drivers = {block.name: _ordered_drivers(flat, block) for block in flat}

    for block in flat:
        spec_for(block)  # raises for unsupported types
        for port, (src, src_port) in enumerate(drivers[block.name]):
            if src_port != 0:
                raise ValidationError(
                    f"connection into {block.name!r}:{port} references output "
                    f"port {src_port} of {src!r}, but all supported blocks "
                    "are single-output"
                )

    schedule = _topo_order(flat, break_state_inputs=True)
    try:
        typing_order = _topo_order(flat, break_state_inputs=False)
    except AnalysisError:
        typing_order = schedule  # feedback loop: delays must self-declare
    signals = _infer_signals(flat, typing_order, drivers)
    return AnalyzedModel(flat, signals, schedule, drivers)
