"""Translation scheduling strategies (paper background §2, step ③).

Code generation infers "the translation sequence of model blocks, based
on the sequential relationship"; any topological order is semantically
valid, but the order affects locality and (on real pipelines) stalls —
the concern of the Mercury line of work the paper cites.  Three
deterministic strategies are provided:

* ``lexicographic`` — Kahn's algorithm with a sorted ready set (the
  default used by :func:`repro.core.analysis.analyze`): stable and
  reproducible;
* ``depth_first`` — consumers are emitted as soon as their inputs are
  ready, keeping producer/consumer pairs adjacent (buffer locality);
* ``fanout_first`` — high-fanout blocks are emitted as early as possible,
  maximizing the distance between a value's definition and its last use
  (a crude stand-in for pipeline-aware reordering).

All strategies break ties deterministically and treat stateful blocks as
sources (their inputs are end-of-step updates).
"""

from __future__ import annotations

from dataclasses import replace

from repro.blocks import spec_for
from repro.core.analysis import AnalyzedModel
from repro.errors import AnalysisError
from repro.model.graph import Model

STRATEGIES = ("lexicographic", "depth_first", "fanout_first")


def _edges(model: Model) -> tuple[dict[str, int], dict[str, list[str]]]:
    in_deg: dict[str, int] = {name: 0 for name in model.blocks}
    succ: dict[str, list[str]] = {name: [] for name in model.blocks}
    for conn in model.connections:
        if spec_for(model[conn.dst]).is_stateful:
            continue  # delay inputs are consumed at end of step
        in_deg[conn.dst] += 1
        succ[conn.src].append(conn.dst)
    return in_deg, succ


def topological_schedule(model: Model,
                         strategy: str = "lexicographic") -> list[str]:
    """A deterministic topological order under the chosen strategy."""
    if strategy not in STRATEGIES:
        raise AnalysisError(
            f"unknown schedule strategy {strategy!r}; known: {STRATEGIES}"
        )
    in_deg, succ = _edges(model)
    fanout = {name: len(model.successors(name)) for name in model.blocks}
    order: list[str] = []

    if strategy == "depth_first":
        ready = sorted((name for name, d in in_deg.items() if d == 0),
                       reverse=True)
        stack = list(ready)
        seen = set(stack)
        while stack:
            name = stack.pop()
            order.append(name)
            unlocked = []
            for nxt in succ[name]:
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0 and nxt not in seen:
                    unlocked.append(nxt)
            for nxt in sorted(unlocked, reverse=True):
                seen.add(nxt)
                stack.append(nxt)
    else:
        def priority(name: str):
            if strategy == "fanout_first":
                return (-fanout[name], name)
            return name
        ready = sorted((n for n, d in in_deg.items() if d == 0), key=priority)
        while ready:
            name = ready.pop(0)
            order.append(name)
            changed = False
            for nxt in succ[name]:
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0:
                    ready.append(nxt)
                    changed = True
            if changed:
                ready.sort(key=priority)

    if len(order) != len(model.blocks):
        cyclic = sorted(set(model.blocks) - set(order))
        raise AnalysisError(
            f"model {model.name!r} has an algebraic loop through {cyclic}"
        )
    return order


def reschedule(analyzed: AnalyzedModel, strategy: str) -> AnalyzedModel:
    """A copy of the analysis with its schedule recomputed."""
    order = topological_schedule(analyzed.model, strategy)
    return replace(analyzed, schedule=order)


def is_valid_schedule(model: Model, order: list[str]) -> bool:
    """Every non-state edge must go forward in the order."""
    position = {name: i for i, name in enumerate(order)}
    if sorted(order) != sorted(model.blocks):
        return False
    for conn in model.connections:
        if spec_for(model[conn.dst]).is_stateful:
            continue
        if position[conn.src] >= position[conn.dst]:
            return False
    return True
