"""Reference simulator (ground truth for generated-code validation)."""

from repro.sim.simulator import (  # noqa: F401
    SimulationTrace, Simulator, random_inputs, simulate,
)
