"""FRODO: the paper's generator — redundancy elimination via calculation
ranges (§3.2), branch-structured control, zoned window lowering — plus the
two §5 mitigations as opt-in modes."""

from __future__ import annotations

from repro.codegen.base import CodeGenerator
from repro.core.analysis import AnalyzedModel
from repro.core.ranges import RangeResult, determine_ranges
from repro.ir.build import StyleOptions


class FrodoGenerator(CodeGenerator):
    """Redundancy-eliminating generator (the paper's contribution).

    Every block is lowered over the calculation range Algorithm 1
    determined; blocks with empty ranges vanish entirely.  Window
    operators use the zoned element-level library (no boundary
    judgments), and scalar-controlled switches are branch-structured.

    Modes (all compose):

    * ``direct_only`` — ablation A1: pull demands back a single level
      instead of recursively;
    * ``generic_functions`` — §5 mitigation for code duplication: complex
      blocks (Convolution) lower to shared functions taking the
      calculation range as parameters;
    * ``coalesce_ranges`` — §5 mitigation for discontinuous ranges:
      widen every range to its bounding interval during propagation, so
      each block keeps one dense vectorizable loop;
    * ``fuse`` — elementwise loop fusion (expression folding) over the
      lowered program;
    * ``reuse`` — liveness-based temp buffer sharing (Embedded Coder's
      "variable reuse");
    * ``fold`` — evaluate constant-fed blocks at generation time.
    """

    name = "frodo"
    range_policy = "frodo"

    def __init__(self, direct_only: bool = False,
                 generic_functions: bool = False,
                 coalesce_ranges: bool = False,
                 fuse: bool = False,
                 reuse: bool = False,
                 fold: bool = False):
        self.generic_functions = generic_functions
        self.coalesce_ranges = coalesce_ranges
        self.direct_only = direct_only
        self.fuse_elementwise = fuse
        self.reuse_buffers = reuse
        self.fold_constants = fold
        suffixes = []
        if direct_only:
            suffixes.append("direct")
            self.range_policy = "direct"
        if generic_functions:
            suffixes.append("fn")
        if coalesce_ranges:
            suffixes.append("coalesce")
        if fuse:
            suffixes.append("fused")
        if reuse:
            suffixes.append("reuse")
        if fold:
            suffixes.append("fold")
        if suffixes:
            self.name = "frodo-" + "-".join(suffixes)

    def compute_ranges(self, analyzed: AnalyzedModel) -> RangeResult:
        return determine_ranges(analyzed, direct_only=self.direct_only,
                                coalesce=self.coalesce_ranges)

    def make_style(self) -> StyleOptions:
        return StyleOptions(branch_structured=True,
                            generic_functions=self.generic_functions)
