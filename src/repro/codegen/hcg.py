"""HCG baseline (forced SIMD on batch blocks, full ranges).

HCG "synthesizes appropriate SIMD instructions for batch computing
blocks".  We mark every sufficiently wide batch loop ``forced_simd``; the
cost model gives those loops fixed 256-bit (x86) / 128-bit (ARM) vector
execution, a per-loop intrinsic setup cost, and an optimization-inhibition
factor — reproducing the paper's observation that at ``-O3`` the forced
intrinsics can underperform the compiler's own auto-vectorizer (the Back
model regression, §4.1).
"""

from __future__ import annotations

from repro.codegen.base import CodeGenerator
from repro.ir.build import StyleOptions


class HCGGenerator(CodeGenerator):
    name = "hcg"
    range_policy = "full"

    def __init__(self, simd_min_width: int = 12):
        self.simd_min_width = simd_min_width

    def make_style(self) -> StyleOptions:
        return StyleOptions(branch_structured=True, forced_simd=True,
                            simd_min_width=self.simd_min_width)
