"""Shared code-generation driver.

All four generators (FRODO, Simulink Embedded Coder, DFSynth, HCG) share
the same skeleton — flatten/analyze, declare one buffer per block, lower
blocks in topological order, append state updates — and differ in exactly
two knobs:

* the **range policy**: FRODO lowers each block over its determined
  calculation range (and skips fully-dead blocks); the baselines lower
  every block over its full range;
* the **style options** (:class:`~repro.ir.build.StyleOptions`): boundary
  judgments (Embedded Coder), branch structuring (DFSynth, FRODO), and
  forced SIMD (HCG).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.blocks import spec_for
from repro.core.analysis import AnalyzedModel, analyze
from repro.core.ranges import RangeResult, determine_ranges, full_ranges
from repro.errors import CodegenError
from repro.ir.build import EmitCtx, StyleOptions
from repro.ir.ops import Comment, Program
from repro.model.graph import Model

_IDENT = re.compile(r"[^0-9a-zA-Z_]+")


def sanitize(name: str) -> str:
    """Turn an arbitrary block/model name into a C identifier stem."""
    stem = _IDENT.sub("_", name).strip("_")
    if not stem:
        stem = "blk"
    if stem[0].isdigit():
        stem = "_" + stem
    return stem


@dataclass
class GeneratedCode:
    """The result of generating code for one model."""

    program: Program
    analyzed: AnalyzedModel
    ranges: RangeResult
    #: Inport block name -> program input buffer name.
    input_buffers: dict[str, str] = field(default_factory=dict)
    #: Outport block name -> program output buffer name.
    output_buffers: dict[str, str] = field(default_factory=dict)

    @property
    def generator(self) -> str:
        return self.program.generator

    def map_inputs(self, named: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Translate Inport-name-keyed inputs to buffer-keyed inputs."""
        mapped: dict[str, np.ndarray] = {}
        for name, value in named.items():
            if name not in self.input_buffers:
                known = ", ".join(sorted(self.input_buffers))
                raise CodegenError(f"unknown inport {name!r}; known: {known}")
            mapped[self.input_buffers[name]] = value
        return mapped

    def map_outputs(self, buffers: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Translate buffer-keyed outputs back to Outport names."""
        return {name: buffers[buf] for name, buf in self.output_buffers.items()}


class CodeGenerator:
    """Base class: subclasses set ``name``, ``style`` and a range policy."""

    name = "base"
    range_policy = "full"  # "full" | "frodo" | "direct"
    #: Run the elementwise loop-fusion pass (expression folding) after
    #: lowering.  Off by default so generator comparisons stay calibrated.
    fuse_elementwise = False
    #: Optional translation-order strategy (see repro.core.schedule);
    #: None keeps the analysis default (lexicographic).
    schedule_strategy: str | None = None
    #: Liveness-based temp-buffer sharing (Embedded Coder's "variable
    #: reuse").  Off by default so the §5 memory comparison stays a
    #: like-for-like buffer census.
    reuse_buffers = False
    #: Evaluate blocks whose inputs are all compile-time constants at
    #: generation time (expression folding at model level).  Off by
    #: default to keep generator comparisons calibrated.
    fold_constants = False

    def make_style(self) -> StyleOptions:
        return StyleOptions()

    def compute_ranges(self, analyzed: AnalyzedModel) -> RangeResult:
        if self.range_policy == "frodo":
            return determine_ranges(analyzed)
        if self.range_policy == "direct":
            return determine_ranges(analyzed, direct_only=True)
        return full_ranges(analyzed)

    # -- driver -------------------------------------------------------------

    def generate(self, model: Model) -> GeneratedCode:
        analyzed = analyze(model)
        if self.schedule_strategy is not None:
            from repro.core.schedule import reschedule
            analyzed = reschedule(analyzed, self.schedule_strategy)
        ranges = self.compute_ranges(analyzed)
        program = Program(sanitize(model.name), generator=self.name)
        style = self.make_style()

        folded = self._fold_constants(analyzed) if self.fold_constants else {}
        buffer_names = self._declare_buffers(program, analyzed, ranges, folded)
        generated = GeneratedCode(program, analyzed, ranges)
        for block in analyzed.inports:
            generated.input_buffers[block.name] = buffer_names[block.name]
        for block in analyzed.outports:
            generated.output_buffers[block.name] = buffer_names[block.name]

        contexts: dict[str, EmitCtx] = {}
        for name in analyzed.schedule:
            block = analyzed.block(name)
            spec = spec_for(block)
            if block.block_type in ("Inport", "Constant", "Terminator"):
                continue
            if name in folded:
                program.notes[name] = "folded to a compile-time constant"
                continue
            out_range = ranges.output_range[name]
            if out_range.is_empty:
                program.notes[name] = "eliminated (empty calculation range)"
                continue
            sig = analyzed.signal_of(name)
            ctx = EmitCtx(
                program=program,
                block_name=name,
                inputs=[buffer_names[src] for src, _ in analyzed.drivers[name]],
                in_shapes=[s.shape for s in analyzed.input_signals(name)],
                in_dtypes=[s.dtype for s in analyzed.input_signals(name)],
                output=buffer_names[name],
                out_shape=sig.shape,
                out_dtype=sig.dtype,
                out_range=out_range,
                style=style,
            )
            contexts[name] = ctx
            program.step.append(Comment(
                f"{block.block_type} {name} range={out_range.describe()}"
            ))
            spec.emit(block, ctx)

        for name in analyzed.schedule:
            block = analyzed.block(name)
            if spec_for(block).is_stateful and name in contexts:
                program.step.append(Comment(f"state update {name}"))
                spec_for(block).emit_update(block, contexts[name])

        if self.fuse_elementwise:
            from repro.codegen.fusion import fuse_elementwise_loops
            fused = fuse_elementwise_loops(program)
            if fused:
                program.notes["__fusion__"] = f"{fused} loop pair(s) fused"
        if self.reuse_buffers:
            from repro.codegen.bufreuse import reuse_buffers
            reuse_buffers(program)
        return generated

    def _fold_constants(self, analyzed: AnalyzedModel) -> dict[str, np.ndarray]:
        """Blocks computable at generation time (all inputs constant)."""
        values: dict[str, np.ndarray] = {}
        folded: dict[str, np.ndarray] = {}
        for name in analyzed.schedule:
            block = analyzed.block(name)
            spec = spec_for(block)
            if block.block_type == "Constant":
                values[name] = np.asarray(block.require_param("value"))
                continue
            if (spec.is_source or spec.is_sink or spec.is_stateful
                    or not analyzed.drivers[name]):
                continue
            if all(src in values for src, _ in analyzed.drivers[name]):
                sig = analyzed.signal_of(name)
                inputs = [values[src].reshape(
                    analyzed.signal_of(src).shape
                    if analyzed.signal_of(src).shape else ())
                    for src, _ in analyzed.drivers[name]]
                result = np.asarray(spec.step(block, inputs, {}),
                                    dtype=sig.dtype)
                values[name] = result
                folded[name] = result
        return folded

    # -- buffers ---------------------------------------------------------------

    def _declare_buffers(self, program: Program, analyzed: AnalyzedModel,
                         ranges: RangeResult,
                         folded: dict[str, np.ndarray] | None = None
                         ) -> dict[str, str]:
        names: dict[str, str] = {}
        folded = folded or {}
        for name in analyzed.schedule:
            block = analyzed.block(name)
            spec = spec_for(block)
            sig = analyzed.signal_of(name)
            buffer = f"b{block.sid}_{sanitize(name)}"
            names[name] = buffer
            if block.block_type == "Terminator":
                continue
            if block.block_type == "Inport":
                program.declare(buffer, sig.shape, sig.dtype, "input")
                continue
            if block.block_type == "Outport":
                program.declare(buffer, sig.shape, sig.dtype, "output")
                continue
            if name in folded:
                program.declare(buffer, sig.shape, sig.dtype, "const",
                                np.asarray(folded[name], dtype=sig.dtype))
                continue
            const_value = spec.constant_value(block)
            if const_value is not None:
                program.declare(buffer, sig.shape, sig.dtype, "const",
                                np.asarray(const_value, dtype=sig.dtype))
                continue
            if ranges.output_range[name].is_empty:
                continue  # fully eliminated: no storage either
            program.declare(buffer, sig.shape, sig.dtype, "temp")
            if spec.is_stateful:
                initial = spec.initial_state(
                    block, analyzed.input_signals(name), sig)
                program.declare(f"{buffer}_z", (np.asarray(initial).size,),
                                sig.dtype, "state", np.asarray(initial))
        return names
