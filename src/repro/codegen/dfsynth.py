"""DFSynth baseline (branch-structured control, full ranges).

DFSynth "disassembles the dataflow model into blocks embedded within
if-else or switch-case statements" — good control structure and hoisted
loop bounds, but "lacking optimization techniques for data-intensive
models" (§4.1): every block still computes its full output range.
"""

from __future__ import annotations

from repro.codegen.base import CodeGenerator
from repro.ir.build import StyleOptions


class DFSynthGenerator(CodeGenerator):
    name = "dfsynth"
    range_policy = "full"

    def make_style(self) -> StyleOptions:
        return StyleOptions(branch_structured=True)
