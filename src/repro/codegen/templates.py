"""Element-level code library (paper §3.2, Figure 4).

FRODO's concise code generation "obtains a suitable code snippet for
replacement from the element-level code library, according to the
calculation range", then "replaces the placeholders in the selected code
snippet with the actual values according to the block parameters".

Each entry pairs the C-text template (with ``$placeholder$`` markers, as
in Figure 4) with the snippet *form*:

* ``individual`` — code for one output element (used for edge positions
  and singleton runs, Figure 4 ①);
* ``consecutive`` — code for a maximal run of consecutive elements
  (Figure 4 ②).

The IR builders in the block specs are the executable counterparts of
these templates; :func:`render` performs the textual substitution that
Figure 4 illustrates, and the test suite checks the rendered text against
the C actually emitted for the same parameters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import CodegenError

_PLACEHOLDER = re.compile(r"\$([A-Za-z0-9_]+)\$")


@dataclass(frozen=True)
class Snippet:
    """One entry of the element-level code library."""

    block_type: str
    form: str  # "individual" | "consecutive"
    template: str

    @property
    def placeholders(self) -> list[str]:
        return sorted(set(_PLACEHOLDER.findall(self.template)))

    def render(self, **values: object) -> str:
        """Substitute ``$name$`` placeholders with actual block parameters."""
        missing = [p for p in self.placeholders if p not in values]
        if missing:
            raise CodegenError(
                f"snippet {self.block_type}/{self.form} missing placeholder "
                f"value(s): {missing}"
            )

        def sub(match: re.Match) -> str:
            return str(values[match.group(1)])
        return _PLACEHOLDER.sub(sub, self.template)


_LIBRARY: dict[tuple[str, str], Snippet] = {}


def _add(block_type: str, form: str, template: str) -> None:
    _LIBRARY[(block_type, form)] = Snippet(block_type, form, template)


def get_snippet(block_type: str, form: str) -> Snippet:
    try:
        return _LIBRARY[(block_type, form)]
    except KeyError:
        known = ", ".join(f"{b}/{f}" for b, f in sorted(_LIBRARY))
        raise CodegenError(
            f"no snippet for {block_type}/{form}; known: {known}"
        ) from None


def render(block_type: str, form: str, **values: object) -> str:
    return get_snippet(block_type, form).render(**values)


def library_entries() -> list[Snippet]:
    return [snippet for _, snippet in sorted(_LIBRARY.items())]


# -- Convolution (Figure 4 of the paper) --------------------------------------

_add("Convolution", "individual", """\
$Output$[$k$] = 0.0;
for (int64_t j = $j_lo$; j < $j_hi$; j++) {
    $Output$[$k$] = ($Output$[$k$] + ($Input2$[j] * $Input1$[($k$ - j)]));
}""")

_add("Convolution", "consecutive", """\
for (int64_t i = $start$; i < $stop$; i++) {
    $Output$[i] = 0.0;
    for (int64_t j = 0; j < $Input2_size$; j++) {
        $Output$[i] = ($Output$[i] + ($Input2$[j] * $Input1$[(i - j)]));
    }
}""")

# -- Selector ---------------------------------------------------------------------

_add("Selector", "individual",
     "$Output$[$k$] = $Input1$[($k$ + $offset$)];")

_add("Selector", "consecutive", """\
for (int64_t i = $start$; i < $stop$; i++) {
    $Output$[i] = $Input1$[(i + $offset$)];
}""")

# -- Pad -------------------------------------------------------------------------------

_add("Pad", "individual",
     "$Output$[$k$] = $value$;")

_add("Pad", "consecutive", """\
for (int64_t i = $start$; i < $stop$; i++) {
    $Output$[i] = $Input1$[(i + $offset$)];
}""")

# -- Elementwise family (one entry serves Gain/Add/Product/... shapes) -----------------

_add("Elementwise", "individual",
     "$Output$[$k$] = $expr$;")

_add("Elementwise", "consecutive", """\
for (int64_t i = $start$; i < $stop$; i++) {
    $Output$[i] = $expr$;
}""")
