"""Simulink Embedded Coder baseline (full ranges, boundary judgments).

The paper attributes Embedded Coder's weakness on data-intensive models to
two code shapes we reproduce here: every block computes its full output
(full padding for Convolution, with the Selector translated afterwards),
and window operators guard each accumulation with per-element boundary
judgments ("Simulink generates numerous boundary judgments to ascertain
whether values should undergo convolution calculations", §4.1).
"""

from __future__ import annotations

from repro.codegen.base import CodeGenerator
from repro.ir.build import StyleOptions


class SimulinkECGenerator(CodeGenerator):
    name = "simulink"
    range_policy = "full"

    def make_style(self) -> StyleOptions:
        return StyleOptions(boundary_judgments=True, autovec_hostile=True)
