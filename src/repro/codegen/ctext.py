"""C99 emission from the loop IR.

Produces a self-contained translation unit with:

* ``static`` const/state/temp arrays (state arrays carry initializers);
* ``void <name>_init(void)`` restoring **every** mutable static buffer —
  state initializers are replayed element by element, uninitialized
  state and temp arrays are ``memset`` back to all-bits-zero (bitwise
  identical to the VM's ``_fill_initial``), and then the program's init
  statements run.  A single loaded shared object can therefore serve
  many independent requests: calling ``_init`` between runs is
  equivalent to a fresh process image;
* ``void <name>_step(const T* in..., T* out...)`` with the step body;
* batched entry points ``<name>_init_batch`` / ``<name>_step_batch``
  (``int64_t nb`` + pointers for input/output/state/temp arrays holding
  ``nb`` consecutive instances each, ``max(size, 1)`` elements per
  instance) evaluating ``nb`` independent model instances per call.
  Unlike the singleton entries, batched state lives in *caller* arrays —
  the file-scope statics are untouched, so batched runs of two VMs over
  one loaded image can never alias (``const`` tables stay shared statics:
  they are read-only).  Bodies are the program's statements with every
  non-const access rewritten to ``index + __b * stride`` inside a loop
  over instances; §5 generic-function calls are inlined first
  (:func:`repro.ir.batch.inline_calls`) so callee accesses get the same
  rewrite.  One compiled object therefore serves any batch size.

The emitted source compiles with the sandbox's ``gcc -std=c11 -O3`` and is
exercised end-to-end by :mod:`repro.native`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodegenError
from repro.ir.ops import (
    Assign, BinOp, BufferDecl, Call, CallStmt, Comment, Const, Expr, For,
    FuncDef, If, Load, Program, Select, Stmt, UnOp, Var, c_type,
)

_HEADER = """\
#include <stdint.h>
#include <stdbool.h>
#include <string.h>
#include <math.h>
#include <complex.h>
"""


def _c_literal(value: object, dtype_hint: str = "") -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, np.integer)):
        if dtype_hint == "uint32":
            return f"{int(value) & 0xFFFFFFFF}u"
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        text = repr(float(value))
        return text if any(c in text for c in ".eE") or "inf" in text or "nan" in text \
            else text + ".0"
    if isinstance(value, (complex, np.complexfloating)):
        c = complex(value)
        return f"({_c_literal(c.real)} + {_c_literal(c.imag)} * I)"
    raise CodegenError(f"cannot emit C literal for {value!r} ({type(value)})")


_CALL_NAMES = {
    "sqrt": "sqrt", "fabs": "fabs", "exp": "exp", "log": "log",
    "sin": "sin", "cos": "cos", "tan": "tan",
    "fmin": "fmin", "fmax": "fmax",
    "floor": "floor", "ceil": "ceil", "round": "round",
    "conj": "conj", "creal": "creal", "cimag": "cimag",
}


def emit_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return _c_literal(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Load):
        return f"{expr.buffer}[{emit_expr(expr.index)}]"
    if isinstance(expr, BinOp):
        return f"({emit_expr(expr.lhs)} {expr.op} {emit_expr(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"({expr.op}{emit_expr(expr.operand)})"
    if isinstance(expr, Call):
        if expr.func == "toint":
            return f"((int64_t)({emit_expr(expr.args[0])}))"
        try:
            name = _CALL_NAMES[expr.func]
        except KeyError:
            raise CodegenError(f"no C mapping for call {expr.func!r}") from None
        args = ", ".join(emit_expr(a) for a in expr.args)
        return f"{name}({args})"
    if isinstance(expr, Select):
        return (f"({emit_expr(expr.cond)} ? {emit_expr(expr.if_true)}"
                f" : {emit_expr(expr.if_false)})")
    raise CodegenError(f"cannot emit expression {expr!r}")


def emit_stmt(stmt: Stmt, indent: int) -> list[str]:
    pad = "    " * indent
    if isinstance(stmt, Comment):
        return [f"{pad}/* {stmt.text} */"]
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.buffer}[{emit_expr(stmt.index)}] = "
                f"{emit_expr(stmt.value)};"]
    if isinstance(stmt, For):
        if stmt.segments is not None and len(stmt.segments) > 1:
            # Fused multi-range loop: one shared body driven by a static
            # segment table (repro.ir.fuse keeps segments sorted/disjoint).
            segs = stmt.segments
            table = ", ".join(f"{{{a}, {b}}}" for a, b in segs)
            seg = f"__seg_{stmt.var}"
            inner_pad = "    " * (indent + 1)
            lines = [
                f"{pad}{{",
                f"{inner_pad}static const int64_t "
                f"__segs_{stmt.var}[{len(segs)}][2] = {{{table}}};",
                f"{inner_pad}for (int64_t {seg} = 0; {seg} < {len(segs)}; "
                f"{seg}++) {{",
                f"{inner_pad}    for (int64_t {stmt.var} = "
                f"__segs_{stmt.var}[{seg}][0]; "
                f"{stmt.var} < __segs_{stmt.var}[{seg}][1]; "
                f"{stmt.var}++) {{",
            ]
            if stmt.forced_simd:
                lines.insert(0, f"{pad}/* HCG: lowered with SIMD intrinsics */")
            for inner in stmt.body:
                lines.extend(emit_stmt(inner, indent + 2))
            lines.append(f"{inner_pad}    }}")
            lines.append(f"{inner_pad}}}")
            lines.append(f"{pad}}}")
            return lines
        start = stmt.start if isinstance(stmt.start, int) \
            else emit_expr(stmt.start)
        stop = stmt.stop if isinstance(stmt.stop, int) \
            else emit_expr(stmt.stop)
        opener = f"{pad}for (int64_t {stmt.var} = {start}; " \
                 f"{stmt.var} < {stop}; {stmt.var}++) {{"
        lines = [opener]
        if stmt.forced_simd:
            lines.insert(0, f"{pad}/* HCG: lowered with SIMD intrinsics */")
        for inner in stmt.body:
            lines.extend(emit_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, CallStmt):
        args = list(stmt.buffer_args) + [emit_expr(a) for a in stmt.scalar_args]
        return [f"{pad}{stmt.func}({', '.join(args)});"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({emit_expr(stmt.cond)}) {{"]
        for inner in stmt.then:
            lines.extend(emit_stmt(inner, indent + 1))
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                lines.extend(emit_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise CodegenError(f"cannot emit statement {stmt!r}")


def _array_initializer(decl: BufferDecl) -> str:
    values = np.asarray(decl.init, dtype=decl.dtype).ravel()
    return "{" + ", ".join(
        _c_literal(v.item() if hasattr(v, "item") else v, decl.dtype)
        for v in values
    ) + "}"


def _declare_static(decl: BufferDecl, qualifier: str = "static") -> str:
    base = f"{qualifier} {c_type(decl.dtype)} {decl.name}[{max(decl.size, 1)}]"
    if decl.init is not None:
        return f"{base} = {_array_initializer(decl)};"
    return f"{base};"


def _emit_function(func: FuncDef) -> list[str]:
    """Emit one §5 generic function (static linkage)."""
    params: list[str] = []
    for p in func.params:
        if p.pointer:
            qualifier = "const " if p.const else ""
            params.append(f"{qualifier}{c_type(p.dtype)}* {p.name}")
        else:
            params.append(f"{c_type(p.dtype)} {p.name}")
    lines = [f"static void {func.name}({', '.join(params)}) {{"]
    for stmt in func.body:
        lines.extend(emit_stmt(stmt, 1))
    lines.append("}")
    return lines


def emit_c(program: Program) -> str:
    """Emit the full translation unit for a program."""
    from repro.ir.fuse import lower_windows  # local: fuse imports ops too

    program = lower_windows(program)  # no-op when no ring buffers
    lines: list[str] = [_HEADER]
    lines.append(f"/* generated by {program.generator or 'repro'} for model "
                 f"{program.name} */")
    lines.append("")

    for decl in program.buffers_of_kind("const"):
        lines.append(_declare_static(decl, "static const"))
    for decl in program.buffers_of_kind("state"):
        lines.append(_declare_static(decl))
    for decl in program.buffers_of_kind("temp"):
        lines.append(_declare_static(decl))
    lines.append("")

    for func in program.functions.values():
        lines.extend(_emit_function(func))
        lines.append("")

    # init: full reset of every mutable static buffer (initializers
    # replayed, everything else zeroed — IEEE-754 zero is all-bits-zero,
    # so memset matches the VM's `buffer[:] = 0` bitwise), then replay
    # program.init.  Repeated _init calls on one loaded image must be
    # indistinguishable from a fresh process start.
    lines.append(f"void {program.name}_init(void) {{")
    for kind in ("state", "temp"):
        for decl in program.buffers_of_kind(kind):
            if decl.init is None:
                lines.append(f"    memset({decl.name}, 0, "
                             f"sizeof {decl.name});")
                continue
            values = np.asarray(decl.init, dtype=decl.dtype).ravel()
            for i, v in enumerate(values):
                literal = _c_literal(v.item() if hasattr(v, "item") else v,
                                     decl.dtype)
                lines.append(f"    {decl.name}[{i}] = {literal};")
    for stmt in program.init:
        lines.extend(emit_stmt(stmt, 1))
    lines.append("}")
    lines.append("")

    params: list[str] = []
    for decl in program.buffers_of_kind("input"):
        params.append(f"const {c_type(decl.dtype)}* {decl.name}")
    for decl in program.buffers_of_kind("output"):
        params.append(f"{c_type(decl.dtype)}* {decl.name}")
    signature = ", ".join(params) if params else "void"
    lines.append(f"void {program.name}_step({signature}) {{")
    for stmt in program.step:
        lines.extend(emit_stmt(stmt, 1))
    lines.append("}")
    lines.append("")
    lines.extend(_emit_batch_entries(program))
    return "\n".join(lines)


#: Buffer kinds that become per-instance parameters of the batched entry
#: points, in ABI order (const tables stay shared file-scope statics).
_BATCH_PARAM_KINDS = ("input", "output", "state", "temp")


def _emit_batch_entries(program: Program) -> list[str]:
    """Emit ``<name>_init_batch`` / ``<name>_step_batch``.

    Both take ``(int64_t nb, <pointers>)`` with one pointer per
    input/output/state/temp buffer, each an array of ``nb`` instances of
    ``max(size, 1)`` elements.  State/temp parameter names shadow the
    file-scope statics, so the rewritten bodies resolve every access to
    the caller's arrays.  ``init_batch`` performs the same full reset as
    ``_init``, per instance, before replaying the program's init
    statements.
    """
    from repro.ir.batch import (batch_stride, fresh_batch_var, inline_calls,
                                offset_stmt, BatchUnsupported)

    params: list[str] = [f"int64_t {program.name}__nb"]
    nb = f"{program.name}__nb"
    for kind in _BATCH_PARAM_KINDS:
        for decl in program.buffers_of_kind(kind):
            qualifier = "const " if kind == "input" else ""
            params.append(f"{qualifier}{c_type(decl.dtype)}* {decl.name}")

    bvar = fresh_batch_var(program)
    strides = {decl.name: batch_stride(decl)
               for kind in _BATCH_PARAM_KINDS
               for decl in program.buffers_of_kind(kind)}
    try:
        init_body = inline_calls(program.init, program)
        step_body = inline_calls(program.step, program)
    except BatchUnsupported as exc:
        raise CodegenError(f"cannot emit batched entry points: {exc}") from exc

    def batch_loop(inner: list[str], prologue: list[str]) -> list[str]:
        if not inner:
            return prologue
        return prologue + [
            f"    for (int64_t {bvar} = 0; {bvar} < {nb}; {bvar}++) {{",
            *inner,
            "    }",
        ]

    lines: list[str] = []
    signature = ", ".join(params)

    lines.append(f"void {program.name}_init_batch({signature}) {{")
    prologue: list[str] = []
    replay: list[str] = []
    for kind in ("state", "temp"):
        for decl in program.buffers_of_kind(kind):
            stride = batch_stride(decl)
            if decl.init is None:
                prologue.append(
                    f"    memset({decl.name}, 0, (size_t){nb} * {stride}"
                    f" * sizeof *{decl.name});")
                continue
            values = np.asarray(decl.init, dtype=decl.dtype).ravel()
            for i, v in enumerate(values):
                literal = _c_literal(v.item() if hasattr(v, "item") else v,
                                     decl.dtype)
                replay.append(f"        {decl.name}"
                              f"[{i} + ({bvar} * {stride})] = {literal};")
    inner = list(replay)
    for stmt in init_body:
        inner.extend(emit_stmt(offset_stmt(stmt, bvar, strides), 2))
    lines.extend(batch_loop(inner, prologue))
    lines.append("}")
    lines.append("")

    lines.append(f"void {program.name}_step_batch({signature}) {{")
    inner = []
    for stmt in step_body:
        inner.extend(emit_stmt(offset_stmt(stmt, bvar, strides), 2))
    lines.extend(batch_loop(inner, []))
    lines.append("}")
    lines.append("")
    return lines
