"""Code generators: FRODO and the three baselines, plus C emission."""

from repro.codegen.base import CodeGenerator, GeneratedCode, sanitize  # noqa: F401
from repro.codegen.ctext import emit_c  # noqa: F401
from repro.codegen.dfsynth import DFSynthGenerator  # noqa: F401
from repro.codegen.frodo import FrodoGenerator  # noqa: F401
from repro.codegen.hcg import HCGGenerator  # noqa: F401
from repro.codegen.simulink_ec import SimulinkECGenerator  # noqa: F401

#: The four generators of the paper's evaluation, in reporting order.
ALL_GENERATORS = {
    "simulink": SimulinkECGenerator,
    "dfsynth": DFSynthGenerator,
    "hcg": HCGGenerator,
    "frodo": FrodoGenerator,
}


#: FRODO variants selectable by name (ablations and §5 extension modes).
FRODO_VARIANTS = {
    "frodo-direct": dict(direct_only=True),
    "frodo-fn": dict(generic_functions=True),
    "frodo-coalesce": dict(coalesce_ranges=True),
    "frodo-fn-coalesce": dict(generic_functions=True, coalesce_ranges=True),
    "frodo-fused": dict(fuse=True),
    "frodo-reuse": dict(reuse=True),
    "frodo-fold": dict(fold=True),
}


def make_generator(name: str) -> CodeGenerator:
    """Instantiate a generator by its reporting name."""
    if name in FRODO_VARIANTS:
        return FrodoGenerator(**FRODO_VARIANTS[name])
    try:
        return ALL_GENERATORS[name]()
    except KeyError:
        known = ", ".join([*ALL_GENERATORS, *FRODO_VARIANTS])
        raise KeyError(f"unknown generator {name!r}; known: {known}") from None
