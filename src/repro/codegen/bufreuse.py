"""Variable (buffer) reuse — a liveness-based storage optimization.

Embedded Coder's documented "variable reuse" shares storage between
signals whose lifetimes do not overlap.  This pass implements the same
idea on the lowered program: temp buffers (per-block intermediates) whose
live ranges over the step body are disjoint are merged into shared
slots, shrinking the program's static footprint.

Liveness is computed at statement granularity over the flattened step
sequence: a temp is live from its first write to its last read.  State,
const, input, and output buffers are never merged (state persists across
steps; I/O names are the ABI).  Buffers are merged only into slots of the
same dtype and at-least-equal size, greedily in order of first
definition — a linear-scan register allocator over arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.interp import substitute_buffers
from repro.ir.ops import (
    Assign, BinOp, Call, CallStmt, Comment, Expr, For, If, Load, Program,
    Select, Stmt, UnOp,
)


def _expr_reads(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, Load):
        out.add(expr.buffer)
        _expr_reads(expr.index, out)
    elif isinstance(expr, BinOp):
        _expr_reads(expr.lhs, out)
        _expr_reads(expr.rhs, out)
    elif isinstance(expr, UnOp):
        _expr_reads(expr.operand, out)
    elif isinstance(expr, Call):
        for arg in expr.args:
            _expr_reads(arg, out)
    elif isinstance(expr, Select):
        _expr_reads(expr.cond, out)
        _expr_reads(expr.if_true, out)
        _expr_reads(expr.if_false, out)


def _stmt_access(stmt: Stmt, program: Program,
                 reads: set[str], writes: set[str]) -> None:
    if isinstance(stmt, Assign):
        writes.add(stmt.buffer)
        _expr_reads(stmt.index, reads)
        _expr_reads(stmt.value, reads)
    elif isinstance(stmt, For):
        if not isinstance(stmt.start, int):
            _expr_reads(stmt.start, reads)
        if not isinstance(stmt.stop, int):
            _expr_reads(stmt.stop, reads)
        for inner in stmt.body:
            _stmt_access(inner, program, reads, writes)
    elif isinstance(stmt, If):
        _expr_reads(stmt.cond, reads)
        for inner in stmt.then + stmt.orelse:
            _stmt_access(inner, program, reads, writes)
    elif isinstance(stmt, CallStmt):
        program.functions[stmt.func]  # KeyError guard: callee must exist
        for arg in stmt.scalar_args:
            _expr_reads(arg, reads)
        # Pointer params: conservatively treat every binding as both read
        # and written (the function body may do either).
        for buffer in stmt.buffer_args:
            reads.add(buffer)
            writes.add(buffer)


@dataclass
class _Interval:
    name: str
    start: int
    end: int
    size: int
    dtype: str


def _live_intervals(program: Program) -> list[_Interval]:
    temps = {decl.name: decl for decl in program.buffers_of_kind("temp")}
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    for position, stmt in enumerate(program.step):
        if isinstance(stmt, Comment):
            continue
        reads: set[str] = set()
        writes: set[str] = set()
        _stmt_access(stmt, program, reads, writes)
        for name in (reads | writes) & temps.keys():
            first.setdefault(name, position)
            last[name] = position
    return sorted(
        (_Interval(name, first[name], last[name],
                   temps[name].size, temps[name].dtype)
         for name in first),
        key=lambda iv: (iv.start, iv.name),
    )


def reuse_buffers(program: Program) -> dict[str, str]:
    """Merge disjoint-lifetime temp buffers in place.

    Returns the applied renaming (old temp name -> shared slot name).
    Buffers referenced by generic-function *bodies* (not call sites) are
    untouched because function bodies only name their own parameters.
    """
    intervals = _live_intervals(program)
    slots: list[dict] = []  # {name, size, dtype, free_at}
    renaming: dict[str, str] = {}
    for interval in intervals:
        placed = False
        for slot in slots:
            if (slot["dtype"] == interval.dtype
                    and slot["size"] >= interval.size
                    and slot["free_at"] < interval.start):
                renaming[interval.name] = slot["name"]
                slot["free_at"] = interval.end
                placed = True
                break
        if not placed:
            slots.append({"name": interval.name, "size": interval.size,
                          "dtype": interval.dtype, "free_at": interval.end})
    renaming = {old: new for old, new in renaming.items() if old != new}
    if not renaming:
        return {}

    program.step[:] = substitute_buffers(program.step, renaming)
    program.init[:] = substitute_buffers(program.init, renaming)
    for old in renaming:
        del program.buffers[old]
    program.notes["__bufreuse__"] = (
        f"{len(renaming)} temp buffer(s) merged into shared slots"
    )
    return renaming
