"""Elementwise loop fusion — an IR-level "expression folding" pass.

The paper notes that Embedded Coder's expression folding and the
compilers' own optimizations overlap; this pass makes the effect explicit
and optional in our generators: adjacent counted loops with *identical
static bounds* whose bodies are pure per-element assignments (every load
and store of a loop-carried buffer at exactly the induction variable) are
merged into one loop.  Under those conditions iteration ``i`` of the
fused body observes exactly the values the unfused program produced:

* within one iteration, statements keep their original order;
* across iterations there is no dependence, because every access to a
  fusible buffer is at index ``i`` only.

Fusion reduces loop-entry overhead and improves locality; it composes
with any range policy because it runs on the finished program.
"""

from __future__ import annotations

from repro.ir.ops import (
    Assign, BinOp, Call, Comment, Const, Expr, For, Load, Program, Select,
    Stmt, UnOp, Var,
)


def _loads_in(expr: Expr):
    if isinstance(expr, Load):
        yield expr
        yield from _loads_in(expr.index)
    elif isinstance(expr, BinOp):
        yield from _loads_in(expr.lhs)
        yield from _loads_in(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from _loads_in(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from _loads_in(arg)
    elif isinstance(expr, Select):
        yield from _loads_in(expr.cond)
        yield from _loads_in(expr.if_true)
        yield from _loads_in(expr.if_false)


def _rename_var(expr: Expr, old: str, new: str) -> Expr:
    if isinstance(expr, Var):
        return Var(new) if expr.name == old else expr
    if isinstance(expr, Load):
        return Load(expr.buffer, _rename_var(expr.index, old, new))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rename_var(expr.lhs, old, new),
                     _rename_var(expr.rhs, old, new))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rename_var(expr.operand, old, new))
    if isinstance(expr, Call):
        return Call(expr.func,
                    tuple(_rename_var(a, old, new) for a in expr.args))
    if isinstance(expr, Select):
        return Select(_rename_var(expr.cond, old, new),
                      _rename_var(expr.if_true, old, new),
                      _rename_var(expr.if_false, old, new))
    return expr


def _is_simple_elementwise(loop: For) -> bool:
    """Body is Assign-only; every store and every load of a non-constant
    index is at exactly the induction variable."""
    if not loop.static_bounds:
        return False
    var = Var(loop.var)
    for stmt in loop.body:
        if not isinstance(stmt, Assign):
            return False
        if stmt.index != var:
            return False
        for ld in _loads_in(stmt.value):
            if ld.index != var and not isinstance(ld.index, Const):
                return False
    return True


def _written(loop: For) -> set[str]:
    return {stmt.buffer for stmt in loop.body if isinstance(stmt, Assign)}


def _scalar_read(loop: For) -> set[str]:
    """Buffers loaded at constant indices (broadcast scalars, tables)."""
    found: set[str] = set()
    for stmt in loop.body:
        if isinstance(stmt, Assign):
            for ld in _loads_in(stmt.value):
                if isinstance(ld.index, Const):
                    found.add(ld.buffer)
    return found


def _can_fuse(first: For, second: For) -> bool:
    if not (_is_simple_elementwise(first) and _is_simple_elementwise(second)):
        return False
    if (first.start, first.stop) != (second.start, second.stop):
        return False
    if first.forced_simd != second.forced_simd:
        return False
    # A buffer written per-element in one loop must not be read at a
    # *constant* index in the other (the constant slot may lie outside
    # the fused iteration's progress).
    if _written(first) & _scalar_read(second):
        return False
    if _written(second) & _scalar_read(first):
        return False
    return True


def _fuse_pair(first: For, second: For) -> For:
    body = list(first.body)
    for stmt in second.body:
        assert isinstance(stmt, Assign)
        body.append(Assign(stmt.buffer,
                           _rename_var(stmt.index, second.var, first.var),
                           _rename_var(stmt.value, second.var, first.var)))
    fused = For(first.var, first.start, first.stop, body,
                vectorizable=first.vectorizable and second.vectorizable)
    fused.forced_simd = first.forced_simd
    return fused


def fuse_elementwise_loops(program: Program) -> int:
    """Fuse adjacent compatible loops in the step body, in place.

    Comments between two loops do not block fusion (they are emitted
    before the fused loop).  Returns the number of fusions performed.
    """
    fused_count = 0
    out: list[Stmt] = []
    for stmt in program.step:
        if isinstance(stmt, For):
            # Find the most recent non-comment statement.
            k = len(out) - 1
            while k >= 0 and isinstance(out[k], Comment):
                k -= 1
            if k >= 0 and isinstance(out[k], For) and _can_fuse(out[k], stmt):
                out[k] = _fuse_pair(out[k], stmt)
                fused_count += 1
                continue
        out.append(stmt)
    program.step[:] = out
    return fused_count
