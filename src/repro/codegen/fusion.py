"""Generator-level loop fusion — a thin shim over :mod:`repro.ir.fuse`.

Historically this module carried its own adjacent-equal-bounds
elementwise merger.  The IR-level pass subsumes it: α-equivalent
range-split loops merge into multi-segment loops, producer→consumer
nests fuse even when non-adjacent (statements between them are hoisted
over when dependence-free) or when their bounds only align after
intersection, and every merge is count-neutral on element operations.

The ``frodo-fused`` generator variant calls :func:`fuse_elementwise_loops`
at generate time; it intentionally runs the pass *without* buffer
contraction so the variant's static-memory statistics keep describing the
program as generated.  Execution-time fusion (the ``fuse=`` knob on
:class:`~repro.ir.interp.VirtualMachine`) applies contraction as well.
"""

from __future__ import annotations

from repro.ir.fuse import fuse_step_inplace, loads_in, rename_var
from repro.ir.ops import Program

# Back-compat aliases: earlier revisions exposed these walkers here.
_loads_in = loads_in
_rename_var = rename_var

__all__ = ["fuse_elementwise_loops"]


def fuse_elementwise_loops(program: Program) -> int:
    """Fuse compatible loop nests in the step body, in place.

    Comments between two loops do not block fusion.  Returns the number
    of merges performed (0 when already at fixpoint — the pass is
    idempotent).
    """
    return fuse_step_inplace(program, contract=False).nests_fused
