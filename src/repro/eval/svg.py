"""Minimal SVG rendering for the paper's bar-chart figures (no plotting
dependency).

:func:`grouped_bar_chart` reproduces the layout of Figure 6: one group of
bars per model, one bar per baseline, and a reference line at 1.0× (the
paper draws FRODO's own duration as the red baseline).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping
from xml.sax.saxutils import escape

_PALETTE = ("#4e79a7", "#f28e2b", "#59a14f", "#b07aa1", "#76b7b2")


def _bar(x: float, y: float, width: float, height: float, color: str,
         title: str) -> str:
    return (f'<rect x="{x:.1f}" y="{y:.1f}" width="{width:.1f}" '
            f'height="{height:.1f}" fill="{color}">'
            f"<title>{escape(title)}</title></rect>")


def grouped_bar_chart(series: Mapping[str, Mapping[str, float]],
                      title: str, unit: str = "x",
                      reference: float | None = 1.0,
                      width: int = 900, height: int = 360) -> str:
    """Render grouped bars: ``series[series_name][group_name] = value``.

    Returns the SVG document as a string.
    """
    series_names = list(series)
    groups: list[str] = []
    for per_group in series.values():
        for group in per_group:
            if group not in groups:
                groups.append(group)
    peak = max((value for per_group in series.values()
                for value in per_group.values()), default=1.0)
    peak = max(peak, reference or 0.0)

    margin_left, margin_bottom, margin_top = 50, 70, 40
    plot_w = width - margin_left - 20
    plot_h = height - margin_top - margin_bottom
    group_w = plot_w / max(len(groups), 1)
    bar_w = group_w * 0.8 / max(len(series_names), 1)

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1.0 - value / (peak * 1.08))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="14">{escape(title)}</text>',
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
        'stroke="#333"/>',
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="#333"/>',
    ]

    # y ticks
    step = max(round(peak / 5, 1), 0.5)
    tick = step
    while tick <= peak * 1.05:
        y = y_of(tick)
        parts.append(f'<line x1="{margin_left - 4}" y1="{y:.1f}" '
                     f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
                     'stroke="#ddd"/>')
        parts.append(f'<text x="{margin_left - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{tick:g}{unit}</text>')
        tick += step

    for g_index, group in enumerate(groups):
        x0 = margin_left + g_index * group_w + group_w * 0.1
        for s_index, name in enumerate(series_names):
            value = series[name].get(group)
            if value is None:
                continue
            x = x0 + s_index * bar_w
            y = y_of(value)
            parts.append(_bar(x, y, bar_w * 0.92, margin_top + plot_h - y,
                              _PALETTE[s_index % len(_PALETTE)],
                              f"{name} / {group}: {value:.2f}{unit}"))
        label_x = x0 + len(series_names) * bar_w / 2
        parts.append(
            f'<text x="{label_x:.1f}" y="{margin_top + plot_h + 12}" '
            f'text-anchor="end" transform="rotate(-35 {label_x:.1f} '
            f'{margin_top + plot_h + 12})">{escape(group)}</text>')

    if reference is not None:
        y = y_of(reference)
        parts.append(f'<line x1="{margin_left}" y1="{y:.1f}" '
                     f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
                     'stroke="#d62728" stroke-dasharray="5,3"/>')
        parts.append(f'<text x="{margin_left + plot_w - 2}" y="{y - 4:.1f}" '
                     f'text-anchor="end" fill="#d62728">FRODO baseline '
                     f'({reference:g}{unit})</text>')

    legend_x = margin_left
    for s_index, name in enumerate(series_names):
        x = legend_x + s_index * 130
        parts.append(_bar(x, height - 18, 10, 10,
                          _PALETTE[s_index % len(_PALETTE)], name))
        parts.append(f'<text x="{x + 14}" y="{height - 9}">'
                     f"{escape(name)}</text>")
    parts.append("</svg>")
    return "\n".join(parts)


def save_figure6_svg(result, path: str | Path) -> Path:
    """Render a Figure6Result as a grouped bar chart."""
    path = Path(path)
    svg = grouped_bar_chart(
        {f"vs {baseline}": per_model
         for baseline, per_model in result.improvement.items()},
        title=f"Figure 6: FRODO execution improvement on {result.profile}",
    )
    path.write_text(svg)
    return path
