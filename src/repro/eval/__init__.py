"""Experiment harness: measurement runner, experiments, validation."""

from repro.eval.experiments import (  # noqa: F401
    MODEL_NAMES, PAPER_FIG6_RANGES, PAPER_TABLE2, Figure6Result, Table2Result,
    ablation_ranges, ablation_recursion, figure6, memory_study, table1, table2,
)
from repro.eval.report import format_bars, format_table, speedup  # noqa: F401
from repro.eval.runner import (  # noqa: F401
    GENERATOR_ORDER, PAPER_REPETITIONS, Measurement, measure, measure_grid,
    run_vm_step,
)
from repro.eval.validate import (  # noqa: F401
    ValidationReport, validate_all, validate_generator,
)
from repro.eval.fullreport import report_all  # noqa: F401,E402
from repro.eval.profile import profile_program, render_profile  # noqa: F401,E402
from repro.eval.sweeps import kernel_sweep, truncation_sweep  # noqa: F401,E402
