"""One-shot regeneration of every paper artifact into a directory.

``report_all(output_dir)`` writes: Table 1, Table 2 (x86 profiles with
headline ranges), Figure 6 for both ARM profiles (text + SVG), the §5
memory study, the A1/A2 ablations, and the A4 sweeps.  This is the
"reproduce the evaluation section" button; the CLI exposes it as
``frodo report -o <dir>``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.experiments import (
    PAPER_FIG6_RANGES, ablation_ranges, ablation_recursion, figure6,
    memory_study, table1, table2,
)
from repro.eval.svg import grouped_bar_chart, save_figure6_svg
from repro.eval.sweeps import kernel_sweep, render_sweep, truncation_sweep


def report_all(output_dir: str | Path, include_sweeps: bool = True,
               echo=print) -> dict[str, Path]:
    """Write every report; returns {artifact name: path}."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}

    def write(name: str, text: str) -> None:
        path = out / name
        path.write_text(text + "\n")
        written[name] = path
        echo(f"wrote {path}")

    write("table1.txt", table1())

    t2 = table2()
    lines = [t2.render(), ""]
    for profile in ("x86-gcc", "x86-clang"):
        ranges = t2.improvement_ranges(profile)
        lines.append(f"{profile}: " + ", ".join(
            f"{low:.2f}x-{high:.2f}x vs {gen}"
            for gen, (low, high) in ranges.items()))
    write("table2.txt", "\n".join(lines))
    from repro.eval.experiments import MODEL_NAMES
    from repro.eval.runner import GENERATOR_ORDER
    series = {gen: {m: t2.seconds(m, gen, "x86-gcc") for m in MODEL_NAMES}
              for gen in GENERATOR_ORDER}
    svg = grouped_bar_chart(series, "Table 2: modeled seconds (x86-gcc, "
                            "10,000 repetitions)", unit="s", reference=None)
    svg_path = out / "table2_x86_gcc.svg"
    svg_path.write_text(svg)
    written[svg_path.name] = svg_path
    echo(f"wrote {svg_path}")

    for profile in ("arm-gcc", "arm-clang"):
        result = figure6(profile)
        lines = [result.render(), "", "ranges (paper in parentheses):"]
        for baseline, (low, high) in result.ranges().items():
            p_low, p_high = PAPER_FIG6_RANGES[(profile, baseline)]
            lines.append(f"  vs {baseline}: {low:.2f}x-{high:.2f}x "
                         f"({p_low:.2f}x-{p_high:.2f}x)")
        write(f"figure6_{profile}.txt", "\n".join(lines))
        svg_path = out / f"figure6_{profile}.svg"
        save_figure6_svg(result, svg_path)
        written[svg_path.name] = svg_path
        echo(f"wrote {svg_path}")

    write("memory_section5.txt", memory_study())
    write("ablation_recursion.txt", ablation_recursion())
    write("ablation_ranges.txt", ablation_ranges())

    if include_sweeps:
        write("sweep_truncation.txt",
              render_sweep(truncation_sweep(), "kept fraction", "dfsynth",
                           "speedup vs kept output fraction"))
        write("sweep_kernel.txt",
              render_sweep(kernel_sweep(), "kernel taps", "simulink",
                           "speedup vs kernel width"))

    # Machine-readable summary of the headline numbers.
    from repro.eval.experiments import MODEL_NAMES as _MODELS
    from repro.eval.runner import GENERATOR_ORDER as _GENS
    summary = {
        "table2_seconds": {
            profile: {m: {g: t2.seconds(m, g, profile) for g in _GENS}
                      for m in _MODELS}
            for profile in ("x86-gcc", "x86-clang")
        },
        "improvement_ranges": {
            profile: {g: list(r) for g, r in
                      t2.improvement_ranges(profile).items()}
            for profile in ("x86-gcc", "x86-clang")
        },
    }
    path = out / "RESULTS.json"
    path.write_text(json.dumps(summary, indent=2) + "\n")
    written["RESULTS.json"] = path
    echo(f"wrote {path}")
    return written
