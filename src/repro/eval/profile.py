"""Per-block execution profiling of generated programs.

Attributes the VM's dynamic op counts to individual blocks using the
block-boundary comments the generators emit, and prices each block's
bucketed counts under a compiler/architecture profile — answering "where
does this model's time go, and which blocks did FRODO actually shrink?".

Exposed on the CLI as ``frodo profile <model>``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


from repro.codegen import make_generator
from repro.eval.report import format_table
from repro.ir.cost import Profile, get_profile
from repro.ir.interp import ContextCounts, OpCounts, VirtualMachine
from repro.ir.ops import Comment, Stmt
from repro.model.graph import Model
from repro.sim.simulator import random_inputs


@dataclass
class BlockProfile:
    """Counts attributed to one block (or pseudo-segment)."""

    label: str
    counts: ContextCounts

    def nanoseconds(self, profile: Profile) -> float:
        return profile.modeled_time_ns(self.counts)

    @property
    def total_ops(self) -> int:
        return self.counts.total.total_element_ops


def _snapshot(counts: ContextCounts) -> dict[str, dict[str, int]]:
    return counts.as_dict()


def _delta(after: dict, before: dict) -> ContextCounts:
    result = ContextCounts()
    for bucket_name in ("scalar", "vector", "forced"):
        bucket = getattr(result, bucket_name)
        for f in fields(OpCounts):
            setattr(bucket, f.name,
                    after[bucket_name][f.name] - before[bucket_name][f.name])
    return result


def _segments(stmts: list[Stmt]) -> list[tuple[str, list[Stmt]]]:
    """Group top-level statements by the preceding block comment."""
    segments: list[tuple[str, list[Stmt]]] = []
    label = "(prelude)"
    current: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Comment):
            if current:
                segments.append((label, current))
                current = []
            # Comments look like "Convolution conv range=[5, 54]" or
            # "state update name"; use the block name as the label.
            tokens = stmt.text.split()
            if tokens[:2] == ["state", "update"]:
                label = f"{tokens[2]} (state)"
            else:
                label = tokens[1] if len(tokens) > 1 else stmt.text
        else:
            current.append(stmt)
    if current:
        segments.append((label, current))
    return segments


def profile_program(code, inputs, steps: int = 1,
                    backend: str = "auto") -> list[BlockProfile]:
    """Execute a generated program attributing counts per block.

    Segments are compiled through the normal backend path, so vectorized
    kernels report the same per-block counts as the closure interpreter.
    Attribution needs the program *as generated* — execution-time loop
    fusion merges nests across the block-comment boundaries this profile
    keys on — so the VM is pinned to ``fuse=False``.
    """
    vm = VirtualMachine(code.program, backend=backend, fuse=False)
    vm.reset()
    vm.set_inputs(code.map_inputs(dict(inputs)))
    compiled = [
        (label, vm._compile_body(stmts, vm.counts.scalar))
        for label, stmts in _segments(code.program.step)
    ]
    totals: dict[str, ContextCounts] = {}
    env: dict[str, int] = {}
    vm._init_fn(env)
    for _ in range(steps):
        for label, fn in compiled:
            before = _snapshot(vm.counts)
            fn(env)
            delta = _delta(_snapshot(vm.counts), before)
            if label in totals:
                merged = totals[label]
                for bucket_name in ("scalar", "vector", "forced"):
                    bucket = getattr(merged, bucket_name)
                    add = getattr(delta, bucket_name)
                    for f in fields(OpCounts):
                        setattr(bucket, f.name,
                                getattr(bucket, f.name) + getattr(add, f.name))
            else:
                totals[label] = delta
    return sorted((BlockProfile(label, counts)
                   for label, counts in totals.items()),
                  key=lambda bp: -bp.total_ops)


def render_profile(model: Model, generator: str = "frodo",
                   profile_name: str = "x86-gcc", steps: int = 1,
                   seed: int = 0, top: int = 20,
                   backend: str = "auto") -> str:
    """Generate, execute, and render a per-block cost table."""
    prof = get_profile(profile_name)
    code = make_generator(generator).generate(model)
    inputs = random_inputs(model, seed=seed)
    blocks = profile_program(code, inputs, steps=steps, backend=backend)
    total_ns = sum(bp.nanoseconds(prof) for bp in blocks) or 1.0
    rows = []
    for bp in blocks[:top]:
        ns = bp.nanoseconds(prof)
        rows.append([bp.label, bp.total_ops, f"{ns:,.0f}",
                     f"{100 * ns / total_ns:.1f}%"])
    if len(blocks) > top:
        rest_ns = sum(bp.nanoseconds(prof) for bp in blocks[top:])
        rows.append([f"({len(blocks) - top} more)", "", f"{rest_ns:,.0f}",
                     f"{100 * rest_ns / total_ns:.1f}%"])
    return format_table(
        ["block", "element ops", f"ns ({profile_name})", "share"], rows,
        title=f"{model.name} / {generator}: per-block cost "
              f"({steps} step(s))")
