"""Cross-checking matrix: every model × every generator × every backend.

Produces the printable form of the paper's correctness claim ("the
consistency between them underscores the correctness of FRODO"): for each
zoo model and generator, the generated program is executed in the IR
virtual machine — and optionally compiled with the host gcc and executed
natively — and compared elementwise against the reference simulator on
random inputs.  ``frodo crosscheck`` prints the matrix; any cell failing
is a hard error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen import make_generator
from repro.eval.report import format_table
from repro.ir.interp import cached_vm
from repro.ir.verify import verify_program
from repro.sim.simulator import random_inputs, simulate
from repro.zoo import EXTENDED, TABLE1, build_model

DEFAULT_GENERATORS = ("simulink", "dfsynth", "hcg", "frodo")


@dataclass
class CrossCheckCell:
    model: str
    generator: str
    vm_ok: bool
    verified: bool
    native_ok: bool | None  # None = not attempted

    @property
    def ok(self) -> bool:
        return self.vm_ok and self.verified and self.native_ok is not False

    def describe(self) -> str:
        parts = ["vm:" + ("ok" if self.vm_ok else "FAIL"),
                 "ir:" + ("ok" if self.verified else "FAIL")]
        if self.native_ok is not None:
            parts.append("cc:" + ("ok" if self.native_ok else "FAIL"))
        return " ".join(parts)


def _close(a, b) -> bool:
    return bool(np.allclose(np.asarray(a).ravel(), np.asarray(b).ravel(),
                            rtol=1e-9, atol=1e-9))


def crosscheck(models: list[str] | None = None,
               generators: tuple[str, ...] = DEFAULT_GENERATORS,
               seeds: range = range(2), steps: int = 2,
               native: bool = False,
               backend: str = "auto",
               fuse: bool = True) -> list[CrossCheckCell]:
    """Run the matrix; returns one cell per (model, generator)."""
    if models is None:
        models = [e.name for e in TABLE1] + [e.name for e in EXTENDED]
    cells: list[CrossCheckCell] = []
    for entry in models:
        # Entries are zoo names or already-built Model objects (the CLI
        # resolves corpus specs and .slx paths before calling in).
        model = build_model(entry) if isinstance(entry, str) else entry
        model_name = getattr(entry, "name", entry)
        for generator in generators:
            code = make_generator(generator).generate(model)
            verified = verify_program(code.program) == []
            vm = cached_vm(code.program, backend=backend, fuse=fuse)
            vm_ok = True
            reference = None
            inputs = None
            for seed in seeds:
                inputs = random_inputs(model, seed=seed)
                reference = simulate(model, inputs, steps=steps)
                outputs = code.map_outputs(
                    vm.run(code.map_inputs(inputs), steps=steps).outputs)
                vm_ok &= all(_close(outputs[k], reference[k])
                             for k in reference)
            native_ok: bool | None = None
            if native:
                from repro.native import compile_and_run, find_compiler
                if find_compiler() is not None:
                    result = compile_and_run(code, inputs, steps=steps)
                    native_ok = all(_close(result.outputs[k], reference[k])
                                    for k in reference)
            cells.append(CrossCheckCell(model_name, generator, vm_ok,
                                        verified, native_ok))
    return cells


def render_crosscheck(cells: list[CrossCheckCell],
                      generators: tuple[str, ...] = DEFAULT_GENERATORS) -> str:
    by_model: dict[str, dict[str, CrossCheckCell]] = {}
    for cell in cells:
        by_model.setdefault(cell.model, {})[cell.generator] = cell
    rows = []
    for model, row in by_model.items():
        rows.append([model] + [row[g].describe() if g in row else "-"
                               for g in generators])
    failures = sum(1 for cell in cells if not cell.ok)
    verdict = "ALL CONSISTENT" if failures == 0 \
        else f"{failures} INCONSISTENT CELL(S)"
    return format_table(["Model", *generators], rows,
                        title="cross-check matrix (generated code vs "
                              f"simulation) — {verdict}")
