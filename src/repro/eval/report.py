"""Plain-text table/figure rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(title: str, labels: Sequence[str], values: Sequence[float],
                unit: str = "x", width: int = 40) -> str:
    """Render a horizontal bar chart (for the Figure 6 improvement plots)."""
    peak = max(values) if values else 1.0
    lines = [title]
    label_w = max(len(label) for label in labels) if labels else 0
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"  {label.ljust(label_w)} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def speedup(baseline_seconds: float, frodo_seconds: float) -> float:
    """Execution-duration improvement factor (paper convention)."""
    return baseline_seconds / frodo_seconds
