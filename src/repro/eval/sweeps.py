"""Parameter sweeps: how FRODO's win scales with the problem knobs.

The paper reports point measurements per model; these sweeps expose the
underlying scaling law on the motivating (same-convolution) pattern:

* :func:`truncation_sweep` — vary the fraction of the convolution output
  the Selector keeps; FRODO's advantage over a full-range baseline should
  grow as the kept fraction shrinks (more redundancy to eliminate) and
  approach 1x as the Selector keeps everything;
* :func:`kernel_sweep` — vary the kernel width at a fixed window;
  Embedded Coder's per-element boundary judgments scale with the kernel,
  so its gap widens with kernel size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen import make_generator
from repro.eval.report import format_table
from repro.ir.cost import get_profile, modeled_seconds
from repro.ir.interp import VirtualMachine
from repro.model.builder import ModelBuilder
from repro.model.graph import Model
from repro.sim.simulator import random_inputs


def same_conv_model(n: int, kernel: int, keep_fraction: float) -> Model:
    """Conv(n, kernel) -> Selector keeping the central ``keep_fraction``."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction {keep_fraction} outside (0, 1]")
    b = ModelBuilder("SweepConv")
    u = b.inport("u", shape=(n,))
    taps = np.hanning(kernel)
    k = b.constant("kernel", taps / taps.sum())
    conv = b.convolution(u, k, name="conv")
    total = n + kernel - 1
    kept = max(1, int(round(total * keep_fraction)))
    start = (total - kept) // 2
    sel = b.selector(conv, start=start, end=start + kept - 1, name="sel")
    b.outport("y", sel)
    return b.build()


@dataclass
class SweepPoint:
    knob: float
    baseline_seconds: float
    frodo_seconds: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.frodo_seconds


def _cell_seconds(model: Model, generator: str, profile) -> float:
    code = make_generator(generator).generate(model)
    inputs = code.map_inputs(random_inputs(model, seed=0))
    counts = VirtualMachine(code.program).run(inputs).counts
    return modeled_seconds(counts, profile)


def truncation_sweep(fractions=(0.125, 0.25, 0.5, 0.75, 1.0),
                     n: int = 128, kernel: int = 9,
                     baseline: str = "dfsynth",
                     profile: str = "x86-gcc") -> list[SweepPoint]:
    """FRODO vs a full-range baseline as the kept window fraction varies."""
    prof = get_profile(profile)
    points = []
    for fraction in fractions:
        model = same_conv_model(n, kernel, fraction)
        points.append(SweepPoint(
            fraction,
            _cell_seconds(model, baseline, prof),
            _cell_seconds(model, "frodo", prof),
        ))
    return points


def kernel_sweep(kernels=(3, 7, 15, 31), n: int = 128,
                 keep_fraction: float = 0.5,
                 baseline: str = "simulink",
                 profile: str = "x86-gcc") -> list[SweepPoint]:
    """Boundary-judgment cost vs kernel width at a fixed window."""
    prof = get_profile(profile)
    points = []
    for kernel in kernels:
        model = same_conv_model(n, kernel, keep_fraction)
        points.append(SweepPoint(
            float(kernel),
            _cell_seconds(model, baseline, prof),
            _cell_seconds(model, "frodo", prof),
        ))
    return points


def render_sweep(points: list[SweepPoint], knob_name: str,
                 baseline: str, title: str) -> str:
    rows = [[f"{p.knob:g}", f"{p.baseline_seconds:.4f}s",
             f"{p.frodo_seconds:.4f}s", f"{p.speedup:.2f}x"]
            for p in points]
    return format_table([knob_name, baseline, "frodo", "speedup"], rows,
                        title=title)
