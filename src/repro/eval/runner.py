"""Measurement runner: generate → execute in the VM → model the time.

One :class:`Measurement` corresponds to one cell of the paper's Table 2
grid (model × generator × compiler/arch profile).  The VM supplies exact
op counts and the outputs used for correctness checks; the cost model
converts counts to modeled seconds under each profile (see
:mod:`repro.ir.cost` for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

import numpy as np

from repro.codegen import GeneratedCode, make_generator
from repro.ir.cost import Profile, get_profile, modeled_seconds
from repro.ir.interp import ContextCounts, cached_vm, clear_vm_cache
from repro.model.graph import Model
from repro.sim.simulator import random_inputs, simulate
from repro.zoo import build_model

#: The paper repeats each generated binary 10,000 times (§4.1).
PAPER_REPETITIONS = 10_000

GENERATOR_ORDER = ("simulink", "dfsynth", "hcg", "frodo")


@dataclass
class Measurement:
    """One (model, generator, profile) evaluation cell."""

    model_name: str
    generator: str
    profile: str
    counts: ContextCounts
    seconds: float
    static_bytes: int
    peak_bytes: int
    outputs_match: bool

    @property
    def total_ops(self) -> int:
        return self.counts.total.total_element_ops


@lru_cache(maxsize=None)
def _generated(model_name: str, generator: str) -> GeneratedCode:
    model = build_model(model_name)
    return make_generator(generator).generate(model)


@lru_cache(maxsize=None)
def _model(model_name: str) -> Model:
    return build_model(model_name)


def measure(model_name: str, generator: str, profile: str | Profile = "x86-gcc",
            steps: int = 1, seed: int = 0,
            repetitions: int = PAPER_REPETITIONS,
            backend: str = "auto") -> Measurement:
    """Evaluate one cell of the Table 2 grid.

    ``backend`` selects the VM execution backend (see
    :mod:`repro.ir.vectorize`); counts and outputs are identical across
    backends, so Table 2 numbers do not depend on the choice.
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    code = _generated(model_name, generator)
    model = _model(model_name)
    inputs = random_inputs(code.analyzed, seed=seed)
    vm = cached_vm(code.program, backend=backend)
    result = vm.run(code.map_inputs(inputs), steps=steps)
    named = code.map_outputs(result.outputs)
    reference = simulate(model, inputs, steps=steps)
    match = all(
        np.allclose(np.asarray(named[k]).ravel(),
                    np.asarray(reference[k]).ravel(), rtol=1e-9, atol=1e-9)
        for k in reference
    )
    return Measurement(
        model_name=model_name,
        generator=generator,
        profile=prof.name,
        counts=result.counts,
        seconds=modeled_seconds(result.counts, prof, repetitions) / steps,
        static_bytes=code.program.static_bytes,
        peak_bytes=result.peak_buffer_bytes,
        outputs_match=match,
    )


def measure_grid(model_names: list[str], generators: list[str],
                 profile: str, **kwargs) -> dict[tuple[str, str], Measurement]:
    """Measure a full model × generator grid under one profile.

    Keyword arguments (``steps``, ``seed``, ``backend``, ...) pass through
    to :func:`measure`; the program cache makes repeated grids cheap.
    """
    grid: dict[tuple[str, str], Measurement] = {}
    for model_name in model_names:
        for generator in generators:
            grid[(model_name, generator)] = measure(
                model_name, generator, profile, **kwargs)
    return grid


def run_vm_step(model_name: str, generator: str,
                inputs: Mapping[str, np.ndarray] | None = None,
                steps: int = 1, seed: int = 0,
                backend: str = "auto") -> None:
    """Execute the generated program once (pytest-benchmark work unit)."""
    code = _generated(model_name, generator)
    if inputs is None:
        inputs = random_inputs(code.analyzed, seed=seed)
    vm = cached_vm(code.program, backend=backend)
    vm.run(code.map_inputs(dict(inputs)), steps=steps)


def clear_caches() -> None:
    _generated.cache_clear()
    _model.cache_clear()
    clear_vm_cache()
