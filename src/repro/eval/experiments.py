"""Per-experiment entry points (see DESIGN.md's experiment index).

Each function regenerates one table or figure of the paper:

* :func:`table1` — the benchmark inventory (E1);
* :func:`table2` — execution duration on x86 with the gcc and clang
  profiles (E2);
* :func:`figure6` — improvement ratios on the ARM profiles (E3/E4);
* :func:`memory_study` — the §5 memory comparison (E5);
* :func:`ablation_recursion` / :func:`ablation_ranges` — A1/A2.

Paper numbers are recorded alongside so reports can print
paper-vs-measured comparisons (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis import analyze
from repro.core.ranges import determine_ranges
from repro.eval.report import format_bars, format_table, speedup
from repro.eval.runner import GENERATOR_ORDER, Measurement, measure
from repro.zoo import TABLE1, build_model

MODEL_NAMES = [entry.name for entry in TABLE1]

#: Table 2 of the paper: execution seconds on x86, (gcc, clang) per cell.
PAPER_TABLE2: dict[str, dict[str, tuple[float, float]]] = {
    "AudioProcess": {"simulink": (1.583, 1.574), "dfsynth": (0.492, 0.583),
                     "hcg": (0.517, 0.419), "frodo": (0.333, 0.202)},
    "Decryption": {"simulink": (0.370, 0.370), "dfsynth": (0.303, 0.211),
                   "hcg": (0.261, 0.184), "frodo": (0.213, 0.119)},
    "HighPass": {"simulink": (0.865, 0.558), "dfsynth": (0.291, 0.323),
                 "hcg": (0.326, 0.307), "frodo": (0.160, 0.182)},
    "HT": {"simulink": (0.651, 0.711), "dfsynth": (0.715, 0.753),
           "hcg": (0.650, 0.743), "frodo": (0.311, 0.317)},
    "Kalman": {"simulink": (0.370, 0.400), "dfsynth": (0.266, 0.333),
               "hcg": (0.260, 0.311), "frodo": (0.201, 0.223)},
    "Back": {"simulink": (0.304, 0.789), "dfsynth": (0.451, 0.536),
             "hcg": (0.699, 0.759), "frodo": (0.241, 0.250)},
    "Maintenance": {"simulink": (0.931, 0.859), "dfsynth": (0.295, 0.343),
                    "hcg": (0.386, 0.271), "frodo": (0.223, 0.189)},
    "Maunfacture": {"simulink": (2.251, 3.449), "dfsynth": (0.973, 1.114),
                    "hcg": (0.658, 0.883), "frodo": (0.486, 0.526)},
    "RunningDiff": {"simulink": (0.708, 0.576), "dfsynth": (0.722, 0.589),
                    "hcg": (0.193, 0.195), "frodo": (0.125, 0.118)},
    "Simpson": {"simulink": (0.949, 1.385), "dfsynth": (0.428, 0.551),
                "hcg": (0.433, 0.409), "frodo": (0.266, 0.248)},
}

#: Figure 6 / §4 text: min-max improvement ranges FRODO achieves on ARM.
PAPER_FIG6_RANGES = {
    ("arm-gcc", "simulink"): (1.71, 8.55),
    ("arm-gcc", "dfsynth"): (1.44, 4.10),
    ("arm-gcc", "hcg"): (1.17, 3.75),
    ("arm-clang", "simulink"): (1.68, 6.46),
    ("arm-clang", "dfsynth"): (1.40, 2.85),
    ("arm-clang", "hcg"): (1.34, 3.17),
}


# -- E1: Table 1 -----------------------------------------------------------------

def table1() -> str:
    rows = []
    for entry in TABLE1:
        model = build_model(entry.name)
        rows.append((entry.name, entry.functionality, model.block_count))
    return format_table(["Model", "Functionality", "#Block"], rows,
                        title="Table 1: benchmark Simulink models")


# -- E2: Table 2 -----------------------------------------------------------------

@dataclass
class Table2Result:
    """Measured grid plus the paper's numbers for comparison."""

    cells: dict[tuple[str, str, str], Measurement] = field(default_factory=dict)

    def seconds(self, model: str, generator: str, profile: str) -> float:
        return self.cells[(model, generator, profile)].seconds

    def render(self) -> str:
        headers = ["Model"]
        for profile in ("x86-gcc", "x86-clang"):
            for generator in GENERATOR_ORDER:
                headers.append(f"{generator}@{profile.split('-')[1]}")
        rows = []
        for model in MODEL_NAMES:
            row: list[object] = [model]
            for profile in ("x86-gcc", "x86-clang"):
                for generator in GENERATOR_ORDER:
                    row.append(f"{self.seconds(model, generator, profile):.3f}s")
            rows.append(row)
        return format_table(headers, rows,
                            title="Table 2: modeled execution duration on x86 "
                                  "(10,000 repetitions)")

    def improvement_ranges(self, profile: str) -> dict[str, tuple[float, float]]:
        """FRODO's min-max speedup vs each baseline (the §4.1 headlines)."""
        ranges: dict[str, tuple[float, float]] = {}
        for generator in GENERATOR_ORDER[:-1]:
            factors = [
                speedup(self.seconds(m, generator, profile),
                        self.seconds(m, "frodo", profile))
                for m in MODEL_NAMES
            ]
            ranges[generator] = (min(factors), max(factors))
        return ranges


def table2(profiles: tuple[str, ...] = ("x86-gcc", "x86-clang"),
           **kwargs) -> Table2Result:
    result = Table2Result()
    for model in MODEL_NAMES:
        for generator in GENERATOR_ORDER:
            for profile in profiles:
                result.cells[(model, generator, profile)] = measure(
                    model, generator, profile, **kwargs)
    return result


# -- E3/E4: Figure 6 ----------------------------------------------------------------

@dataclass
class Figure6Result:
    profile: str
    #: improvement[baseline][model] = baseline_seconds / frodo_seconds.
    improvement: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        sections = []
        for baseline, per_model in self.improvement.items():
            sections.append(format_bars(
                f"FRODO improvement vs {baseline} ({self.profile})",
                list(per_model), list(per_model.values())))
        return "\n\n".join(sections)

    def ranges(self) -> dict[str, tuple[float, float]]:
        return {
            baseline: (min(v.values()), max(v.values()))
            for baseline, v in self.improvement.items()
        }


def figure6(profile: str = "arm-gcc", **kwargs) -> Figure6Result:
    result = Figure6Result(profile)
    frodo = {m: measure(m, "frodo", profile, **kwargs).seconds
             for m in MODEL_NAMES}
    for baseline in GENERATOR_ORDER[:-1]:
        result.improvement[baseline] = {
            m: speedup(measure(m, baseline, profile, **kwargs).seconds, frodo[m])
            for m in MODEL_NAMES
        }
    return result


# -- E5: §5 memory study ---------------------------------------------------------------

def memory_study(profile: str = "x86-gcc") -> str:
    headers = ["Model"] + [f"{g} bytes" for g in GENERATOR_ORDER] \
        + ["max/min"]
    rows = []
    for model in MODEL_NAMES:
        sizes = [measure(model, g, profile).static_bytes
                 for g in GENERATOR_ORDER]
        rows.append([model, *sizes, f"{max(sizes) / min(sizes):.2f}"])
    return format_table(headers, rows,
                        title="Section 5: static buffer bytes per generator")


# -- A1: recursion ablation ---------------------------------------------------------------

def ablation_recursion(profile: str = "x86-gcc") -> str:
    headers = ["Model", "full (frodo)", "direct-only", "no-opt (dfsynth)",
               "recursive gain"]
    rows = []
    for model in MODEL_NAMES:
        full = measure(model, "frodo", profile).seconds
        direct = measure(model, "frodo-direct", profile).seconds
        none = measure(model, "dfsynth", profile).seconds
        rows.append([model, f"{full:.3f}s", f"{direct:.3f}s", f"{none:.3f}s",
                     f"{direct / full:.2f}x"])
    return format_table(headers, rows,
                        title="Ablation A1: recursive vs direct-only range "
                              "propagation")


# -- A2: range statistics / discontinuous ranges --------------------------------------------

def ablation_ranges() -> str:
    headers = ["Model", "optimizable", "eliminated elems", "discont. blocks",
               "gen. stmts (frodo)", "gen. stmts (dfsynth)"]
    rows = []
    for entry in TABLE1:
        model = build_model(entry.name)
        analyzed = analyze(model)
        ranges = determine_ranges(analyzed)
        discontinuous = sum(
            1 for rng in ranges.output_range.values() if rng.run_count > 1)
        from repro.eval.runner import _generated
        frodo_stmts = _generated(entry.name, "frodo").program.statement_count
        df_stmts = _generated(entry.name, "dfsynth").program.statement_count
        rows.append([
            entry.name, len(ranges.optimizable),
            ranges.eliminated_elements(analyzed), discontinuous,
            frodo_stmts, df_stmts,
        ])
    return format_table(headers, rows,
                        title="Ablation A2: range statistics and code size "
                              "(§5 threats)")
