"""Exception hierarchy for the FRODO reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses partition the failure
domains of the pipeline: model construction, ``.slx`` parsing, static
validation (shape/dtype inference), analysis, and code generation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ModelError(ReproError):
    """Structural problem in a model: duplicate names, bad connections."""


class SlxFormatError(ReproError):
    """The ``.slx`` container or its XML payload is malformed."""


class ValidationError(ReproError):
    """Static validation failed: shapes, dtypes, or parameters disagree."""


class AnalysisError(ReproError):
    """Dataflow analysis failed: cycles without delays, unreachable ports."""


class CodegenError(ReproError):
    """Code generation could not lower a block or assemble the program."""


class SimulationError(ReproError):
    """The reference simulator hit an unsupported or inconsistent state."""


class NativeToolchainError(ReproError):
    """The host C toolchain is missing or the compile/run step failed."""
