"""HighPass — high-pass filter model (Table 1: 49 blocks).

A cascade of three spectral-subtraction high-pass sections: each section
low-passes the signal with a "same" convolution (Convolution + Selector)
and subtracts the smooth component from the input.  The deployed filter
only drives a 64-sample output window of the 128-sample frame, so a final
Selector truncates the result — FRODO narrows all three convolution
cascades to the (dilated) window.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

FRAME = 128
TAPS = 11
OUT_START, OUT_END = 32, 95


def _lowpass_kernel(index: int) -> np.ndarray:
    taps = np.hanning(TAPS) * (1.0 + 0.1 * index)
    return taps / taps.sum()


def build() -> Model:
    b = ModelBuilder("HighPass")
    half = (TAPS - 1) // 2

    x = b.inport("x", shape=(FRAME,))                       # 1

    # Input conditioning.
    calibrated = b.gain(x, 0.98, name="calib")              # 2
    debiased = b.bias(calibrated, -0.01, name="debias")     # 3

    signal = debiased
    for i in range(4):                                      # 4 x 6 = 24 -> 27
        kernel = b.constant(f"sec{i}_kernel", _lowpass_kernel(i))
        conv = b.convolution(signal, kernel, name=f"sec{i}_conv")
        smooth = b.selector(conv, start=half, end=half + FRAME - 1,
                            name=f"sec{i}_same")
        high = b.sub(signal, smooth, name=f"sec{i}_sub")
        gained = b.gain(high, 1.1, name=f"sec{i}_gain")
        signal = b.bias(gained, -0.002 * i, name=f"sec{i}_trim")

    window = b.selector(signal, start=OUT_START, end=OUT_END,
                        name="out_window")                  # 22
    shaped = b.saturation(window, -4.0, 4.0, name="out_sat")  # 23
    b.outport("y", shaped)                                  # 24

    # Envelope follower on the output window.
    rectified = b.abs(window, name="env_abs")               # 25
    env_kernel = b.constant("env_kernel",
                            np.ones(5) / 5.0)               # 26
    env_conv = b.convolution(rectified, env_kernel, name="env_conv")  # 27
    envelope = b.selector(env_conv, start=2, end=2 + 63, name="env_same")  # 28
    env_peak_in = b.gain(envelope, 1.0, name="env_scale")   # 29
    peak = b.sum_of_elements(env_peak_in, name="env_sum")   # 30
    level = b.gain(peak, 1.0 / 64, name="env_mean")         # 31
    b.outport("envelope_level", level)                      # 32

    # Stopband leakage monitor: residual low-frequency content.
    lp_kernel = b.constant("mon_kernel", np.ones(TAPS) / TAPS)  # 33
    mon_conv = b.convolution(window, lp_kernel, name="mon_conv")  # 34
    mon_same = b.selector(mon_conv, start=half, end=half + 63,
                          name="mon_same")                  # 35
    mon_sq = b.math(mon_same, "square", name="mon_sq")      # 42
    leakage = b.mean(mon_sq, name="mon_mean")               # 43
    floored = b.bias(leakage, 1e-9, name="mon_floor")       # 44
    leak_db = b.math(floored, "log", name="mon_log")        # 45
    b.outport("leakage", leak_db)                           # 46

    # Output slope telemetry.
    slope = b.difference(window, name="slope")              # 47
    steepest = b.block("MinMaxOfElements", [slope],
                       name="steepest", function="max")     # 48
    b.outport("max_slope", steepest)                        # 49
    return b.build()
