"""Maunfacture — product quality assessment model (Table 1: 29 blocks).

(The model name keeps the paper's Table 1 spelling.)  A 200-sample line
scan is smoothed with a wide "same" convolution, and quality statistics
are computed over the 100-sample inspection window at the center of the
part.  The wide kernel makes the full-padding + boundary-judgment shape
(Simulink Embedded Coder) especially expensive here — in the paper this
is Simulink's worst model — while FRODO computes only the (dilated)
inspection window, branch-free.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

SCAN = 200
TAPS = 15
WIN_START, WIN_END = 50, 149


def build() -> Model:
    b = ModelBuilder("Maunfacture")
    half = (TAPS - 1) // 2

    raw = b.inport("scan", shape=(SCAN,))                         # 1
    scan = b.bias(raw, -0.012, name="adc_offset")                 # 2

    # Smoothing: wide same-convolution.
    kernel = b.constant("kernel", np.hanning(TAPS) / np.hanning(TAPS).sum())  # 3
    conv = b.convolution(scan, kernel, name="smooth_conv")        # 4
    smooth = b.selector(conv, start=half, end=half + SCAN - 1,
                        name="smooth_same")                       # 4

    # Inspection window statistics.
    window = b.selector(smooth, start=WIN_START, end=WIN_END,
                        name="inspect_win")                       # 5
    mean = b.mean(window, name="win_mean")                        # 6
    centered = b.sub(window, mean, name="win_center")             # 7
    squared = b.math(centered, "square", name="win_sq")           # 8
    variance = b.mean(squared, name="win_var")                    # 9
    sigma = b.sqrt(variance, name="win_sigma")                    # 10

    # Surface roughness: first difference magnitude over the window.
    rough_d = b.difference(window, name="rough_diff")             # 11
    rough_abs = b.abs(rough_d, name="rough_abs")                  # 12
    roughness = b.mean(rough_abs, name="roughness")               # 13

    # Defect detector: deviation beyond k-sigma anywhere in the window.
    dev = b.abs(centered, name="dev_abs")                         # 14
    k_sigma = b.gain(sigma, 3.0, name="k_sigma")                  # 15
    excess = b.sub(dev, k_sigma, name="excess")                   # 16
    peak = b.block("MinMaxOfElements", [excess], name="peak",
                   function="max")                                # 17

    # Quality gate: defect-free parts pass (peak excess < 0).
    ok_value = b.constant("ok_value", 0.0)                        # 18
    bad_value = b.constant("bad_value", 1.0)                      # 19
    verdict = b.switch(bad_value, peak, ok_value,
                       threshold=0.0, name="verdict")             # 20

    # Material accumulation trend over the inspection window.
    accumulated = b.cumsum(window, name="accum")                  # 21
    total = b.selector(accumulated, start=WIN_END - WIN_START,
                       end=WIN_END - WIN_START, name="accum_total")  # 22
    per_mm = b.gain(total, 0.05, name="accum_scale")              # 23
    b.outport("material", per_mm)                                 # 24

    b.outport("sigma_out", sigma)                                 # 25
    b.outport("roughness_out", roughness)                         # 26
    b.outport("peak_out", peak)                                   # 27
    b.outport("verdict_out", verdict)                             # 28
    return b.build()
