"""AudioProcess — vehicle audio analysis (Table 1: 51 blocks).

A three-band filter bank over a microphone frame, followed by band energy
features and an RMS loudness path.  Each band is a "same" convolution
(Convolution + Selector), and the feature extractors analyze only the
stationary middle segment of the frame — the data-truncation pattern that
makes Simulink Embedded Coder's full-padding convolution (with per-element
boundary judgments) so expensive on this model in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

FRAME = 96
TAPS = 9
SEG_START, SEG_END = 28, 67  # analysis segment (40 samples)


def _band_kernel(index: int) -> np.ndarray:
    base = np.hanning(TAPS)
    modulation = np.cos(np.arange(TAPS) * (index + 1) * 0.7)
    taps = base * modulation
    return taps / np.abs(taps).sum()


def build() -> Model:
    b = ModelBuilder("AudioProcess")
    half = (TAPS - 1) // 2

    u = b.inport("mic", shape=(FRAME,))                       # 1

    # Pre-emphasis front end: u[t] - 0.95 * u[t-1] via a UnitDelay.
    prev = b.unit_delay(u, name="pre_delay")                  # 2
    scaled_prev = b.gain(prev, 0.95, name="pre_gain")         # 3
    emphasized = b.sub(u, scaled_prev, name="pre_diff")       # 4

    # DC removal over the frame.
    dc = b.mean(emphasized, name="dc_mean")                   # 5
    centered = b.sub(emphasized, dc, name="dc_remove")        # 6

    band_outputs = []
    for i in range(3):                                        # 3 x 5 = 15 -> 21
        kernel = b.constant(f"band{i}_kernel", _band_kernel(i))
        conv = b.convolution(centered, kernel, name=f"band{i}_conv")
        same = b.selector(conv, start=half, end=half + FRAME - 1,
                          name=f"band{i}_same")
        gained = b.gain(same, 1.0 + 0.25 * i, name=f"band{i}_gain")
        band_outputs.append(b.abs(gained, name=f"band{i}_abs"))

    # Per-band energy features on the analysis segment only.
    for i, band in enumerate(band_outputs):                   # 3 x 5 = 15 -> 36
        segment = b.selector(band, start=SEG_START, end=SEG_END,
                             name=f"band{i}_seg")
        squared = b.math(segment, "square", name=f"band{i}_sq")
        energy = b.mean(squared, name=f"band{i}_energy")
        level = b.sqrt(energy, name=f"band{i}_level")
        b.outport(f"band{i}_out", level)

    # Mixdown loudness path, windowed to the same segment.
    mix = b.add(*band_outputs, name="mix")                    # 37
    window = b.constant("window", np.hanning(FRAME))          # 38
    shaped = b.product(mix, window, name="shaped")            # 39
    segment = b.selector(shaped, start=SEG_START, end=SEG_END,
                         name="mix_seg")                      # 40
    squared = b.math(segment, "square", name="mix_sq")        # 41
    rms_mean = b.mean(squared, name="mix_mean")               # 42
    rms = b.sqrt(rms_mean, name="mix_rms")                    # 43
    clipped = b.saturation(rms, 0.0, 10.0, name="mix_sat")    # 44
    b.outport("loudness", clipped)                            # 45

    # Transient detector on the selected segment of the mix.
    diff = b.difference(segment, name="trans_diff")           # 46
    mag = b.abs(diff, name="trans_abs")                       # 47
    peak_sum = b.sum_of_elements(mag, name="trans_sum")       # 48
    flag = b.relational(peak_sum, b.constant("trans_thresh", 20.0),
                        op=">", name="trans_flag")            # 49, 50
    b.outport("transient", flag)                              # 51
    return b.build()
