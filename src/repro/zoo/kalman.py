"""Kalman — automotive temperature control module (Table 1: 46 blocks).

A steady-state Kalman filter (constant gain) over an 8-dimensional thermal
state.  The sensor frame delivers 12 raw channels but the filter uses only
4 of them (Selector), each with per-channel calibration; the control
output taps only the first two states (Submatrix).  The state recursion
runs through a UnitDelay, so this model also exercises feedback scheduling
and state updates in every generator.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

NX = 8   # states
NZ = 4   # used measurements
RAW = 12  # raw sensor channels


def _system_matrices() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(7)
    a = np.eye(NX) * 0.92 + rng.uniform(-0.03, 0.03, size=(NX, NX))
    h = rng.uniform(0.0, 1.0, size=(NZ, NX)) / NX
    k = rng.uniform(0.05, 0.25, size=(NX, NZ))
    return a, h, k


def build() -> Model:
    b = ModelBuilder("Kalman")
    a_mat, h_mat, k_mat = _system_matrices()

    z_raw = b.inport("sensors", shape=(RAW,))                    # 1

    # Per-channel calibration of the four used channels.
    cal_channels = []
    for i in range(NZ):                                          # 4 x 3 = 12 -> 13
        chan = b.selector(z_raw, start=3 * i, end=3 * i, name=f"z{i}_pick")
        gained = b.gain(chan, 1.0 + 0.01 * i, name=f"z{i}_gain")
        cal_channels.append(b.bias(gained, -0.05 * i, name=f"z{i}_bias"))
    z = b.concatenate(*cal_channels, name="z_vec")               # 14
    z_col = b.reshape(z, (NZ, 1), name="z_col")                  # 15

    # State recursion (UnitDelay closes the loop; shape declared).
    x_prev = b.block("UnitDelay", name="x_prev", shape=(NX, 1),
                     dtype="float64", initial=0.0)               # 16

    a_const = b.constant("A", a_mat)                             # 17
    x_pred = b.matmul(a_const, x_prev, name="x_pred")            # 18

    h_const = b.constant("H", h_mat)                             # 19
    z_pred = b.matmul(h_const, x_pred, name="z_pred")            # 20
    innovation = b.sub(z_col, z_pred, name="innovation")         # 21

    k_const = b.constant("K", k_mat)                             # 22
    correction = b.matmul(k_const, innovation, name="correction")  # 23
    x_new = b.add(x_pred, correction, name="x_new")              # 24
    b.model.connect(x_new, x_prev)  # feedback edge

    # Control output: first two states only.
    x_out = b.submatrix(x_new, 0, 1, 0, 0, name="x_out")         # 25
    setpoint = b.constant("setpoint", np.array([[21.0], [20.0]]))  # 26
    error = b.sub(setpoint, x_out, name="ctrl_error")            # 27
    p_term = b.gain(error, 1.8, name="p_gain")                   # 28
    clipped = b.saturation(p_term, -5.0, 5.0, name="ctrl_sat")   # 29
    b.outport("control", clipped)                                # 30

    # Innovation diagnostics.
    innov_flat = b.reshape(innovation, (NZ,), name="innov_flat")  # 31
    innov_sq = b.math(innov_flat, "square", name="innov_sq")     # 32
    nis = b.sum_of_elements(innov_sq, name="nis")                # 33
    healthy = b.relational(nis, b.constant("nis_gate", 9.49),
                           op="<", name="healthy")               # 34, 35
    b.outport("health", healthy)                                 # 36

    # Five-step temperature forecast: only state 0 is reported, so FRODO
    # computes a single row of the A^5 propagation.
    a5 = b.constant("A5", np.linalg.matrix_power(a_mat, 5))      # 37
    forecast = b.matmul(a5, x_new, name="forecast")              # 38
    cabin = b.submatrix(forecast, 0, 0, 0, 0, name="cabin_fc")   # 39
    cabin_c = b.bias(cabin, 0.5, name="cabin_units")             # 40
    b.outport("forecast_out", cabin_c)                           # 41

    # Ambient compensation from the three auxiliary channels.
    ambient = b.selector(z_raw, start=9, end=11, name="ambient")  # 42
    amb_mean = b.mean(ambient, name="amb_mean")                  # 43
    amb_gain = b.gain(amb_mean, 0.12, name="amb_gain")           # 44
    amb_sat = b.saturation(amb_gain, -1.0, 1.0, name="amb_sat")  # 45
    b.outport("ambient_bias", amb_sat)                           # 46
    return b.build()
