"""Maintenance — industry equipment preservation model (Table 1: 165 blocks).

Condition monitoring over a 256-sample multiplexed sensor frame.  A shared
conditioning front end (calibration, debias, rectify, smoothing) processes
the whole frame; sixteen channel pipelines then each select their
16-sample slot and compute health features — but only ten channels are
commissioned on this installation.  The six dormant channels terminate in
Terminator blocks, and the commissioned channels only touch ten slots of
the frame: FRODO trims the shared front end to exactly the commissioned
slots and eliminates the dormant pipelines outright, while the baselines
condition and analyze all 256 samples and all 16 channels.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

FRAME = 256
CHANNELS = 16
SLOT = FRAME // CHANNELS
ACTIVE = (0, 1, 2, 4, 6, 7, 9, 11, 13, 14)  # commissioned channels


def build() -> Model:
    b = ModelBuilder("Maintenance")

    frame = b.inport("frame", shape=(FRAME,))                  # 1

    # Shared conditioning front end over the full frame.
    calibrated = b.gain(frame, 1.02, name="fe_gain")           # 2
    debiased = b.bias(calibrated, -0.03, name="fe_bias")       # 3
    rectified = b.abs(debiased, name="fe_abs")                 # 4
    smooth_kernel = b.constant("fe_kernel", np.ones(5) / 5.0)  # 5
    smooth_conv = b.convolution(rectified, smooth_kernel,
                                name="fe_conv")                # 6
    conditioned = b.selector(smooth_conv, start=2, end=2 + FRAME - 1,
                             name="fe_same")                   # 7

    alarm_inputs = []
    health_refs = []
    for ch in range(CHANNELS):                                 # 16 x 9 = 144 -> 152
        slot = b.selector(conditioned, start=ch * SLOT,
                          end=(ch + 1) * SLOT - 1, name=f"ch{ch}_slot")
        gained = b.gain(slot, 1.0 + 0.02 * ch, name=f"ch{ch}_cal")
        squared = b.math(gained, "square", name=f"ch{ch}_sq")
        energy = b.mean(squared, name=f"ch{ch}_energy")
        drift = b.difference(gained, name=f"ch{ch}_drift")
        drift_abs = b.abs(drift, name=f"ch{ch}_drift_abs")
        drift_sum = b.sum_of_elements(drift_abs, name=f"ch{ch}_drift_sum")
        wear = b.add(energy, drift_sum, name=f"ch{ch}_wear")
        if ch in ACTIVE:
            flag = b.relational(
                wear, b.constant(f"ch{ch}_limit", 4.0 + 0.1 * ch),
                op=">", name=f"ch{ch}_alarm")
            alarm_inputs.append(flag)
            health_refs.append(wear)
        else:
            # Dormant channel: wear metric is wired off to a Terminator.
            b.terminator(wear, name=f"ch{ch}_term")
    # active: 10 x (flag + const) = +20 of which loop counted 9 each...
    # (counts are asserted by tests; see zoo registry metadata)

    # Plant-level aggregation over the commissioned channels.
    wear_vec = b.concatenate(*health_refs, name="wear_vec")
    worst = b.minmax(*alarm_inputs[:2], function="max", name="alarm_pair")
    b.outport("wear_profile", wear_vec)
    b.outport("alarm", worst)
    return b.build()
