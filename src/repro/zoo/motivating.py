"""The paper's motivating example (Figures 1 and 5).

A "same" convolution: the Convolution block produces the full-padding
result (n + m - 1 elements), and a Selector keeps the central window so the
output has the input's length.  Everything the Selector discards — the
ramp-up/ramp-down edges — is redundant work in every baseline generator.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model


def build(n: int = 60, kernel_size: int = 11) -> Model:
    """Same-convolution model: Conv -> Selector -> Gain -> Outport.

    With the defaults the Convolution output has indices [0, 69] and the
    Selector keeps [5, 64] — mirroring Figure 5's [0, 59] -> [5, 54]
    narration (the paper's sizes differ by a constant; the structure is
    identical).
    """
    if kernel_size % 2 == 0 or kernel_size < 3:
        raise ValueError("kernel_size must be odd and >= 3")
    b = ModelBuilder("Convolution")
    u = b.inport("u", shape=(n,))
    taps = np.hanning(kernel_size)
    kernel = b.constant("kernel", taps / taps.sum())
    conv = b.convolution(u, kernel, name="conv")
    half = (kernel_size - 1) // 2
    same = b.selector(conv, start=half, end=half + n - 1, name="sel")
    amp = b.gain(same, 2.0, name="amp")
    b.outport("y", amp)
    return b.build()
