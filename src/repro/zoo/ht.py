"""HT — Hermitian transpose matrix calculation (Table 1: 26 blocks).

Complex beamforming-style arithmetic: the covariance-like products
``Aᴴ·B`` and ``Bᴴ·A`` are formed from two 8×8 complex channel matrices,
but the consumer only reads the top-left 4×4 quadrant of each product
(the active sub-array).  The Submatrix truncation lets FRODO trim the
matrix multiplies to 4 rows × 4 columns and the Hermitian transposes to
exactly the touched elements.
"""

from __future__ import annotations

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

DIM = 8
SUB = 4


def build() -> Model:
    b = ModelBuilder("HT")

    a = b.inport("A", shape=(DIM, DIM), dtype="complex128")   # 1
    bb = b.inport("B", shape=(DIM, DIM), dtype="complex128")  # 2

    # Channel calibration.
    a_cal = b.gain(a, 0.97, name="a_cal")                     # 3
    b_cal = b.gain(bb, 1.03, name="b_cal")                    # 4

    # First quadratic form: quadrant of A^H B.
    a_h = b.hermitian(a_cal, name="a_herm")                   # 5
    ahb = b.matmul(a_h, b_cal, name="ahb")                    # 6
    ahb_q = b.submatrix(ahb, 0, SUB - 1, 0, SUB - 1, name="ahb_quad")  # 7

    # Second quadratic form: quadrant of B^H A.
    b_h = b.hermitian(b_cal, name="b_herm")                   # 8
    bha = b.matmul(b_h, a_cal, name="bha")                    # 9
    bha_q = b.submatrix(bha, 0, SUB - 1, 0, SUB - 1, name="bha_quad")  # 10

    # Hermitian part of the quadrant pair: (P + Q^H) / 2.
    bha_qh = b.hermitian(bha_q, name="bha_quad_h")            # 11
    herm_sum = b.add(ahb_q, bha_qh, name="herm_sum")          # 12
    herm_part = b.gain(herm_sum, 0.5, name="herm_half")       # 13
    b.outport("G", herm_part)                                 # 14

    # Skew part diagnostic on the same quadrant.
    skew = b.sub(ahb_q, bha_qh, name="skew_diff")             # 15
    skew_conj = b.conj(skew, name="skew_conj")                # 16
    skew_energy = b.product(skew, skew_conj, name="skew_sq")  # 17
    b.outport("skew", skew_energy)                            # 18

    # Steering response: quadrant acting on a fixed weight vector.
    weights = b.constant("weights", [[1.0 + 0.0j]] * SUB)     # 19  (SUB x 1)
    response = b.matmul(herm_part, weights, name="steer")     # 20
    resp_t = b.transpose(response, name="steer_row")          # 21
    b.outport("response", resp_t)                             # 22

    # Two-element trace diagnostic of the Hermitian part.
    g00 = b.submatrix(herm_part, 0, 0, 0, 0, name="g00")      # 23
    g11 = b.submatrix(herm_part, 1, 1, 1, 1, name="g11")      # 24
    trace2 = b.add(g00, g11, name="trace2")                   # 25
    b.outport("trace2_out", trace2)                           # 26
    return b.build()
