"""Decryption — decryption protocol (Table 1: 39 blocks).

A lightweight word-oriented block decipher on uint32 data: five rounds of
round-key XOR, S-box substitution, and rotate-style diffusion.  The
deployed module only consumes the first half of the deciphered block (the
payload; the rest is padding/MAC), so a final Selector truncates the block
— and FRODO propagates that truncation back through every elementwise
round, halving the work of the whole cipher.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

BLOCK_WORDS = 64
ROUNDS = 5
PAYLOAD_WORDS = 32
ROT = 7


def _sbox(seed: int = 2024) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2 ** 32, size=256, dtype="uint64").astype("uint32")
    return values


def build() -> Model:
    b = ModelBuilder("Decryption")

    cipher = b.inport("cipher", shape=(BLOCK_WORDS,), dtype="uint32")   # 1
    key = b.inport("key", shape=(BLOCK_WORDS * ROUNDS,), dtype="uint32")  # 2

    state = cipher
    for r in range(ROUNDS):                                  # 5 x 6 = 30 -> 32
        round_key = b.selector(key, start=r * BLOCK_WORDS,
                               end=(r + 1) * BLOCK_WORDS - 1,
                               name=f"round{r}_key")
        mixed = b.bitwise(state, round_key, op="XOR", name=f"round{r}_xor")
        substituted = b.lookup(_sbox(2024 + r), mixed, name=f"round{r}_sbox")
        left = b.shift(substituted, ROT, direction="left", name=f"round{r}_shl")
        right = b.shift(substituted, 32 - ROT, direction="right",
                        name=f"round{r}_shr")
        state = b.bitwise(left, right, op="OR", name=f"round{r}_rot")

    payload = b.selector(state, start=0, end=PAYLOAD_WORDS - 1,
                         name="payload")                     # 33
    b.outport("plain", payload)                              # 34

    # Integrity word over the payload: mask and fold.
    mask = b.constant("mask", np.full(PAYLOAD_WORDS, 0x00FFFFFF, dtype="uint32"))  # 35
    masked = b.bitwise(payload, mask, op="AND", name="mac_mask")  # 36
    folded_l = b.shift(masked, 16, direction="left", name="mac_shl")   # 37
    folded = b.bitwise(masked, folded_l, op="XOR", name="mac_fold")    # 38
    b.outport("mac", folded)                                 # 39
    return b.build()
