"""Simpson — numerical integration model (Table 1: 30 blocks).

Composite Simpson's rule over a sampled integrand.  The samples arrive on
a 129-point grid but the integral is taken over the first 65 nodes only
(Selector), and the rule weights odd and even interior nodes differently —
expressed with *stride* Selectors, which give the upstream per-parity
scaling blocks genuinely discontinuous calculation ranges (the paper's §5
threat about discontinuous ranges; exercised by ablation A2).
"""

from __future__ import annotations

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

GRID = 129
NODES = 65  # integration window [0, 64]; even count of panels
H = 0.01


def build() -> Model:
    b = ModelBuilder("Simpson")

    x = b.inport("samples", shape=(GRID,))                      # 1

    # Integrand evaluation f(x) = x * sin(x) + 0.1 * x^2 on the full grid.
    sin_x = b.trig(x, "sin", name="sin_x")                      # 2
    x_sin = b.product(x, sin_x, name="x_sin")                   # 3
    x_sq = b.math(x, "square", name="x_sq")                     # 4
    x_sq_s = b.gain(x_sq, 0.1, name="x_sq_scale")               # 5
    f = b.add(x_sin, x_sq_s, name="integrand")                  # 6

    # Integration window: first 65 nodes of the 129-point grid.
    window = b.selector(f, start=0, end=NODES - 1, name="window")  # 7

    # Per-parity pre-scaling (distinct calibration of ADC banks).
    odd_bank = b.gain(window, 1.0 + 1e-4, name="odd_bank")      # 8
    even_bank = b.gain(window, 1.0 - 1e-4, name="even_bank")    # 9

    # Simpson weights via stride selectors.
    odd_nodes = b.selector(odd_bank, start=1, end=NODES - 2, stride=2,
                           name="odd_nodes")                    # 10
    even_nodes = b.selector(even_bank, start=2, end=NODES - 3, stride=2,
                            name="even_nodes")                  # 11
    first = b.selector(window, start=0, end=0, name="first_node")  # 12
    last = b.selector(window, start=NODES - 1, end=NODES - 1,
                      name="last_node")                         # 13

    odd_sum = b.sum_of_elements(odd_nodes, name="odd_sum")      # 14
    even_sum = b.sum_of_elements(even_nodes, name="even_sum")   # 15
    odd_term = b.gain(odd_sum, 4.0 * H / 3.0, name="odd_term")  # 16
    even_term = b.gain(even_sum, 2.0 * H / 3.0, name="even_term")  # 17
    ends = b.add(first, last, name="ends")                      # 18
    end_term = b.gain(ends, H / 3.0, name="end_term")           # 19
    integral = b.add(odd_term, even_term, end_term,
                     name="simpson_sum")                        # 20
    calibrated = b.gain(integral, 1.0, name="unit_scale")       # 21
    b.outport("integral", calibrated)                           # 22

    # Error estimate: compare against the trapezoid rule on the window.
    interior = b.selector(window, start=1, end=NODES - 2,
                          name="trap_interior")                 # 22
    trap_sum = b.sum_of_elements(interior, name="trap_sum")     # 23
    trap_mid = b.gain(trap_sum, H, name="trap_mid")             # 24
    trap_ends = b.gain(ends, H / 2.0, name="trap_ends")         # 25
    trapezoid = b.add(trap_mid, trap_ends, name="trapezoid")    # 26
    error = b.sub(calibrated, trapezoid, name="richardson")     # 28
    error_abs = b.abs(error, name="error_abs")                  # 29
    b.outport("error", error_abs)                               # 30
    return b.build()
