"""ImagePipeline — extended-zoo model (not part of the paper's Table 1).

A 2-D inspection pipeline demonstrating redundancy elimination beyond the
paper's 1-D models: blur (Convolution2D), region-of-interest crop
(Submatrix), edge detection (second Convolution2D), focus crop, and
scalar sharpness statistics.  Registered separately from TABLE1 so the
paper's inventory stays exact.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

HEIGHT, WIDTH = 24, 20
ROI = (8, 19, 6, 17)  # inclusive rows/cols of the inspection window


def build() -> Model:
    b = ModelBuilder("ImagePipeline")

    frame = b.inport("frame", shape=(HEIGHT, WIDTH))

    # Denoise: 5x5 blur via full-padding conv + interior crop is implied
    # by the ROI Submatrix below (the 2-D "same convolution" pattern).
    blur_taps = np.outer(np.hanning(5), np.hanning(5))
    blur_k = b.constant("blur_k", blur_taps / blur_taps.sum())
    blurred = b.block("Convolution2D", [frame, blur_k], name="blurred")

    roi = b.submatrix(blurred, *ROI, name="roi")  # 12x12

    lap = b.constant("lap_k", np.array([[0.0, -1.0, 0.0],
                                        [-1.0, 4.0, -1.0],
                                        [0.0, -1.0, 0.0]]))
    edges = b.block("Convolution2D", [roi, lap], name="edges")
    focus = b.submatrix(edges, 2, 11, 2, 11, name="focus")  # valid interior

    flat = b.reshape(focus, (100,), name="focus_flat")
    energy_sq = b.math(flat, "square", name="edge_sq")
    sharpness = b.mean(energy_sq, name="sharpness")
    peak = b.block("MinMaxOfElements", [flat], name="peak", function="max")

    b.outport("focus_out", focus)
    b.outport("sharpness_out", sharpness)
    b.outport("peak_out", peak)
    return b.build()
