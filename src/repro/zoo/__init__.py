"""Benchmark model zoo — the 10 data-intensive models of Table 1.

The authors' models come from industry and are not distributed; each zoo
entry re-creates the named model's functionality and data-truncation
structure from the paper's description, with the flattened block count
matching Table 1 exactly (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.model.graph import Model
from repro.zoo import (
    audioprocess, back, batterymonitor, decryption, highpass, ht,
    imagepipeline, kalman, maintenance, manufacture, motivating,
    runningdiff, simpson,
)


@dataclass(frozen=True)
class ZooEntry:
    """One row of Table 1."""

    name: str
    functionality: str
    block_count: int
    builder: Callable[[], Model]


#: Table 1 of the paper, in its row order.
TABLE1: list[ZooEntry] = [
    ZooEntry("AudioProcess", "Vehicle audio analysis", 51, audioprocess.build),
    ZooEntry("Decryption", "Decryption protocol", 39, decryption.build),
    ZooEntry("HighPass", "HighPass filter model", 49, highpass.build),
    ZooEntry("HT", "Hermitian transpose matrix calculation", 26, ht.build),
    ZooEntry("Kalman", "Automotive temperature control module", 46, kalman.build),
    ZooEntry("Back", "Backpropagation in the CNN model", 24, back.build),
    ZooEntry("Maintenance", "Industry equipment preservation model", 165,
             maintenance.build),
    ZooEntry("Maunfacture", "Product quality assessment model", 29,
             manufacture.build),
    ZooEntry("RunningDiff", "Differential amplifier", 106, runningdiff.build),
    ZooEntry("Simpson", "Numerical integration model", 30, simpson.build),
]

MODELS: dict[str, ZooEntry] = {entry.name: entry for entry in TABLE1}

#: Extended-zoo models beyond the paper's Table 1 (2-D pipelines, demos).
EXTENDED: list[ZooEntry] = [
    ZooEntry("ImagePipeline", "2-D blur + ROI inspection (extension)",
             imagepipeline.build().block_count, imagepipeline.build),
    ZooEntry("BatteryMonitor", "Battery pack monitoring (extension)",
             batterymonitor.build().block_count, batterymonitor.build),
]
EXTENDED_MODELS: dict[str, ZooEntry] = {e.name: e for e in EXTENDED}


def model_names() -> list[str]:
    return [entry.name for entry in TABLE1]


def build_model(name: str) -> Model:
    """Build a Table 1 model, an extended-zoo model, or "Motivating"."""
    if name == "Motivating":
        return motivating.build()
    if name in EXTENDED_MODELS:
        return EXTENDED_MODELS[name].builder()
    try:
        return MODELS[name].builder()
    except KeyError:
        known = ", ".join([*MODELS, *EXTENDED_MODELS, "Motivating"])
        raise KeyError(f"unknown zoo model {name!r}; known: {known}") from None


def build_all() -> dict[str, Model]:
    return {entry.name: entry.builder() for entry in TABLE1}
