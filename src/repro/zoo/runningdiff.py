"""RunningDiff — differential amplifier (Table 1: 106 blocks).

A 64-sample differential acquisition front end (difference of the + and -
rails with common-mode rejection) followed by twelve tap analyzers, each
selecting an 8-sample tap window and computing a running-difference
feature.  The tap windows overlap only part of the frame, so FRODO trims
the shared rail arithmetic to the union of tap windows; the dominant work
is wide elementwise arithmetic, which compilers vectorize well — the
regime where the paper sees HCG close to FRODO and DFSynth far behind.
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

FRAME = 64
TAPS = 12
TAP_LEN = 8


def _tap_start(index: int) -> int:
    # Taps cover the first five eighths of the frame only.
    usable = FRAME - 3 * FRAME // 8 - TAP_LEN
    return (index * usable) // max(TAPS - 1, 1)


def build() -> Model:
    b = ModelBuilder("RunningDiff")

    plus = b.inport("rail_plus", shape=(FRAME,))                # 1
    minus = b.inport("rail_minus", shape=(FRAME,))              # 2

    # Differential front end with common-mode rejection.
    diff = b.sub(plus, minus, name="rail_diff")                 # 3
    common = b.add(plus, minus, name="rail_common")             # 4
    half_common = b.gain(common, 0.5, name="cm_half")           # 5
    cm_mean = b.mean(half_common, name="cm_mean")               # 6
    cm_scaled = b.gain(cm_mean, 0.001, name="cmrr")             # 7
    corrected = b.sub(diff, cm_scaled, name="corrected")        # 8

    # Pre-amplifier with offset trim and anti-alias smoothing.
    preamp = b.gain(corrected, 4.0, name="preamp")              # 9
    trimmed = b.bias(preamp, 0.002, name="offset_trim")         # 10
    aa_kernel = b.constant("aa_kernel", np.ones(5) / 5.0)       # 11
    aa_conv = b.convolution(trimmed, aa_kernel, name="aa_conv")  # 12
    aa_same = b.selector(aa_conv, start=2, end=2 + FRAME - 1,
                         name="aa_same")                        # 13
    amplified = b.gain(aa_same, 12.5, name="amplifier")         # 14
    limited = b.saturation(amplified, -50.0, 50.0, name="limiter")  # 15

    for t in range(TAPS):                                       # 12 x 7 = 84 -> 94
        start = _tap_start(t)
        tap = b.selector(limited, start=start, end=start + TAP_LEN - 1,
                         name=f"tap{t}_win")
        running = b.difference(tap, name=f"tap{t}_rdiff")
        mag = b.abs(running, name=f"tap{t}_abs")
        slew = b.sum_of_elements(mag, name=f"tap{t}_slew")
        level = b.mean(tap, name=f"tap{t}_level")
        feature = b.add(slew, level, name=f"tap{t}_feature")
        b.outport(f"tap{t}", feature)

    # Frame-level diagnostics over the acquisition window the taps cover.
    active = b.selector(limited, start=0, end=39, name="frame_act")  # 100
    sq = b.math(active, "square", name="frame_sq")              # 101
    energy = b.mean(sq, name="frame_energy")                    # 102
    b.outport("energy", energy)                                 # 103

    # Common-mode drift monitor (stateful scalar).
    cm_prev = b.unit_delay(cm_scaled, name="cm_prev")           # 104
    cm_drift = b.sub(cm_scaled, cm_prev, name="cm_drift")       # 105
    b.outport("drift", cm_drift)                                # 106
    return b.build()
