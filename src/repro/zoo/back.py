"""Back — backpropagation in a CNN model (Table 1: 24 blocks).

One backward step of a small dense head: the output-layer delta is pulled
back through the weight matrix, gated by the sigmoid derivative, and the
weight gradient is formed as an outer product.  Only a 4-row slice of the
weight gradient is committed this iteration (block-sparse update), and
only the first 8 hidden deltas feed the upstream layer — two truncations
FRODO exploits inside the matrix products.

This is the model where the paper observes HCG's forced SIMD intrinsics
*hurting* at ``-O3`` (verbose fmadd assembly blocking other compiler
optimizations).
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

HIDDEN = 16
OUT = 8
GRAD_ROWS = 4   # rows of the weight gradient committed per iteration
DELTA_KEEP = 8  # hidden deltas consumed by the upstream layer


def build() -> Model:
    b = ModelBuilder("Back")
    rng = np.random.default_rng(13)

    act = b.inport("activations", shape=(HIDDEN,))               # 1
    delta_out = b.inport("delta_out", shape=(OUT,))              # 2

    # Outer-product weight gradient: delta_out (OUT x 1) @ act (1 x HIDDEN).
    delta_col = b.reshape(delta_out, (OUT, 1), name="delta_col")  # 3
    act_row = b.reshape(act, (1, HIDDEN), name="act_row")        # 4
    grad_w = b.matmul(delta_col, act_row, name="grad_w")         # 5
    grad_slice = b.submatrix(grad_w, 0, GRAD_ROWS - 1, 0, HIDDEN - 1,
                             name="grad_slice")                  # 6
    lr = b.gain(grad_slice, -0.01, name="lr_scale")              # 7
    b.outport("weight_update", lr)                               # 8

    # Hidden delta: W^T @ delta_out, gated by sigmoid'(act).
    w = b.constant("W", rng.uniform(-0.5, 0.5, size=(OUT, HIDDEN)))  # 9
    w_t = b.transpose(w, name="w_t")                             # 10
    back = b.matmul(w_t, delta_col, name="back")                 # 11
    back_flat = b.reshape(back, (HIDDEN,), name="back_flat")     # 12

    ones = b.constant("ones", np.ones(HIDDEN))                   # 13
    one_minus = b.sub(ones, act, name="one_minus")               # 14
    sig_prime = b.product(act, one_minus, name="sig_prime")      # 15
    delta_h = b.product(back_flat, sig_prime, name="delta_h")    # 16

    kept = b.selector(delta_h, start=0, end=DELTA_KEEP - 1,
                      name="delta_keep")                         # 17

    # Momentum IIR on the kept deltas (stateful feedback).
    momentum = b.block("UnitDelay", name="momentum",
                       shape=(DELTA_KEEP,), dtype="float64",
                       initial=0.0)                              # 18
    scaled = b.gain(momentum, 0.9, name="momentum_scale")        # 19
    blended = b.add(kept, scaled, name="blend")                  # 20
    b.model.connect(blended, momentum)  # close the IIR loop
    b.outport("delta_hidden", blended)                           # 21

    # Bias gradient: the committed output-unit slice of delta_out.
    bias_slice = b.selector(delta_out, start=0, end=GRAD_ROWS - 1,
                            name="bias_slice")                   # 22
    bias_lr = b.gain(bias_slice, -0.01, name="bias_lr")          # 23
    b.outport("bias_update", bias_lr)                            # 24
    return b.build()
