"""BatteryMonitor — extended-zoo model (not part of the paper's Table 1).

A battery-pack monitoring channel that exercises the extended block
vocabulary in one realistic assembly: per-cell voltage conditioning
(DeadZone noise gate, Quantizer telemetry compression), open-circuit-
voltage → state-of-charge conversion via linear Interpolation, a runtime
cell selector (index_port — the Figure 3 property whose mapping is
conservative), a patched calibration window (Assignment), and a
contactor decision (Switch).  Only the 16-cell reporting window of the
64-cell string is transmitted, so FRODO trims the whole conditioning
chain to that window (plus the conservative full-range paths).
"""

from __future__ import annotations

import numpy as np

from repro.model.builder import ModelBuilder
from repro.model.graph import Model

CELLS = 64
REPORT_START, REPORT_END = 24, 39  # 16-cell reporting window

#: OCV(SoC) table: volts at 0.1-SoC breakpoints (monotone, Li-ion-ish).
OCV_TABLE = np.array([3.00, 3.30, 3.45, 3.55, 3.62, 3.68,
                      3.74, 3.82, 3.92, 4.05, 4.20])


def build() -> Model:
    b = ModelBuilder("BatteryMonitor")

    volts = b.inport("cell_volts", shape=(CELLS,))
    pick = b.inport("probe_index", shape=())   # runtime-selected cell

    # Conditioning: remove sensor dither, compress to telemetry LSBs.
    gated = b.block("DeadZone", [volts], name="dither_gate",
                    lower=-0.002, upper=0.002)
    centered = b.bias(gated, 3.60, name="recenter")
    quantized = b.block("Quantizer", [centered], name="telemetry_q",
                        interval=0.005)

    # Calibration patch: 4 reference cells are overwritten with bench
    # measurements (Assignment — the dual truncation).
    bench = b.inport("bench_ref", shape=(4,))
    patched = b.block("Assignment", [quantized, bench], name="cal_patch",
                      start=28)

    # State of charge per cell via OCV interpolation (volts -> SoC).
    soc = b.block("Interpolation", [patched], name="ocv_soc",
                  table=np.linspace(0.0, 1.0, OCV_TABLE.size),
                  x0=float(OCV_TABLE[0]),
                  dx=float((OCV_TABLE[-1] - OCV_TABLE[0]) / (OCV_TABLE.size - 1)))

    # Only the reporting window leaves the ECU.
    window = b.selector(soc, start=REPORT_START, end=REPORT_END,
                        name="report_win")
    b.outport("soc_report", window)

    # Pack statistics on the reporting window.
    weakest = b.block("MinMaxOfElements", [window], name="weakest",
                      function="min")
    spread_hi = b.block("MinMaxOfElements", [window], name="strongest",
                        function="max")
    imbalance = b.sub(spread_hi, weakest, name="imbalance")
    b.outport("imbalance_out", imbalance)

    # Probe output: a runtime-chosen 4-cell window (index_port Selector —
    # statically unknowable start, so its input stays full range).
    probe = b.block("Selector", [soc, pick], name="probe",
                    mode="index_port", length=4)
    probe_mean = b.mean(probe, name="probe_mean")
    b.outport("probe_out", probe_mean)

    # Contactor decision: open the pack if the weakest reported cell
    # dips below the cutoff (branch-structured Switch).
    closed = b.constant("closed", 1.0)
    open_ = b.constant("open", 0.0)
    margin = b.bias(weakest, -0.15, name="cutoff_margin")
    contactor = b.switch(closed, margin, open_, threshold=0.0,
                         name="contactor")
    b.outport("contactor_out", contactor)
    return b.build()
