"""Command-line interface: ``frodo <command>``.

Mirrors how the paper's tool is used: point it at a ``.slx`` model (or a
named zoo model), inspect the calculation ranges, and generate C code with
FRODO or any of the baseline generators.  The experiment commands
regenerate the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.codegen import ALL_GENERATORS, FRODO_VARIANTS, emit_c, make_generator
from repro.core.analysis import analyze
from repro.core.ranges import determine_ranges
from repro.model.graph import Model
from repro.model.mdl import load_mdl, save_mdl
from repro.model.slx import load_slx, save_slx


def _resolve_model(spec: str) -> Model:
    """A model argument is a zoo name, a corpus spec, or a .slx path."""
    from repro.corpus import build_corpus_model, corpus_spec_help, is_corpus_spec
    from repro.zoo import EXTENDED_MODELS, MODELS, build_model
    if is_corpus_spec(spec):
        from repro.errors import ModelError
        try:
            return build_corpus_model(spec)
        except ModelError as exc:
            raise SystemExit(str(exc))
    if spec in MODELS or spec in EXTENDED_MODELS or spec == "Motivating":
        return build_model(spec)
    path = Path(spec)
    if path.exists():
        return load_mdl(path) if path.suffix == ".mdl" else load_slx(path)
    known = ", ".join([*MODELS, *EXTENDED_MODELS, "Motivating"])
    raise SystemExit(f"unknown model {spec!r}: not a zoo name ({known}), "
                     f"not a corpus spec ({corpus_spec_help()}), "
                     "and no such file")


def cmd_list_models(_args) -> None:
    from repro.eval.experiments import table1
    print(table1())


def cmd_show_ranges(args) -> None:
    model = _resolve_model(args.model)
    analyzed = analyze(model)
    ranges = determine_ranges(analyzed)
    print(f"model {model.name}: {len(ranges.optimizable)} optimizable "
          f"block(s), {ranges.eliminated_elements(analyzed)} elements "
          "eliminated")
    for name in analyzed.schedule:
        sig = analyzed.signal_of(name)
        rng = ranges.output_range[name]
        marker = " *" if name in ranges.optimizable else ""
        print(f"  {name:30s} {str(sig.shape):>10s} "
              f"range={rng.describe()}{marker}")


def cmd_generate(args) -> None:
    model = _resolve_model(args.model)
    generator = make_generator(args.generator)
    code = generator.generate(model)
    source = emit_c(code.program)
    if args.output:
        out_path = Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(source)
        print(f"wrote {out_path} ({len(source.splitlines())} lines, "
              f"{code.program.static_bytes} static bytes)")
    else:
        print(source)


def cmd_export(args) -> None:
    model = _resolve_model(args.model)
    target = Path(args.output)
    if target.suffix == ".mdl":
        path = save_mdl(model, target)
    else:
        path = save_slx(model, target)
    print(f"wrote {path}")


def cmd_validate(args) -> None:
    from repro.eval.validate import validate_all
    model = _resolve_model(args.model)
    reports = validate_all(model, seeds=range(args.cases), steps=args.steps,
                           backend=args.backend, fuse=args.fuse)
    failed = False
    for report in reports:
        status = "PASS" if report.passed else "FAIL"
        print(f"{report.generator:10s} {status} ({report.cases} random cases)")
        for failure in report.failures:
            failed = True
            print(f"    {failure}")
    if failed:
        raise SystemExit(1)


def cmd_table2(_args) -> None:
    from repro.eval.experiments import table2
    result = table2()
    print(result.render())
    for profile in ("x86-gcc", "x86-clang"):
        ranges = result.improvement_ranges(profile)
        summary = ", ".join(f"{low:.2f}x-{high:.2f}x vs {gen}"
                            for gen, (low, high) in ranges.items())
        print(f"FRODO on {profile}: {summary}")


def cmd_figure6(args) -> None:
    from repro.eval.experiments import figure6
    print(figure6(args.profile).render())


def cmd_memory(_args) -> None:
    from repro.eval.experiments import memory_study
    print(memory_study())


def cmd_crosscheck(args) -> None:
    from repro.eval.crosscheck import crosscheck, render_crosscheck
    models = [_resolve_model(args.model)] if args.model else None
    cells = crosscheck(models=models, native=args.native,
                       seeds=range(args.cases), steps=args.steps,
                       backend=args.backend, fuse=args.fuse)
    print(render_crosscheck(cells))
    if any(not cell.ok for cell in cells):
        raise SystemExit(1)


def cmd_dot(args) -> None:
    from repro.core.ranges import determine_ranges
    from repro.model.dot import model_to_dot
    model = _resolve_model(args.model)
    analyzed = analyze(model)
    ranges = determine_ranges(analyzed) if not args.no_ranges else None
    text = model_to_dot(analyzed, ranges)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)


def cmd_compile(args) -> None:
    """Emit C, compile with the host toolchain, run, and report."""
    import numpy as np
    from repro.native import compile_and_run, find_compiler
    from repro.sim.simulator import random_inputs, simulate
    if find_compiler() is None:
        raise SystemExit("no C compiler found on PATH")
    model = _resolve_model(args.model)
    code = make_generator(args.generator).generate(model)
    inputs = random_inputs(model, seed=args.seed)
    result = compile_and_run(code, inputs, steps=args.steps,
                             repetitions=args.repetitions,
                             workdir=args.keep_sources)
    expected = simulate(model, inputs, steps=args.steps)
    for key in expected:
        ok = np.allclose(np.asarray(result.outputs[key]).ravel(),
                         np.asarray(expected[key]).ravel(),
                         rtol=1e-9, atol=1e-12)
        print(f"output {key}: {'matches simulation' if ok else 'MISMATCH'}")
        if not ok:
            raise SystemExit(1)
    if result.seconds is not None:
        print(f"{args.repetitions} repetitions: {result.seconds:.4f}s")
    if result.source_dir:
        print(f"sources kept in {result.source_dir}")


def cmd_profile(args) -> None:
    from repro.eval.profile import render_profile
    model = _resolve_model(args.model)
    print(render_profile(model, generator=args.generator,
                         profile_name=args.profile, steps=args.steps,
                         backend=args.backend))


def cmd_report(args) -> None:
    from repro.eval.fullreport import report_all
    written = report_all(args.output, include_sweeps=not args.no_sweeps)
    print(f"{len(written)} artifact(s) in {args.output}")


def _block_rows() -> list[list[str]]:
    from repro.blocks import get_spec, registered_types
    rows = []
    for type_name in registered_types():
        spec = get_spec(type_name)
        arity_hi = "n" if spec.max_inputs is None else str(spec.max_inputs)
        arity = str(spec.min_inputs) if arity_hi == str(spec.min_inputs) \
            else f"{spec.min_inputs}..{arity_hi}"
        traits = ", ".join(trait for trait, flag in (
            ("source", spec.is_source), ("sink", spec.is_sink),
            ("stateful", spec.is_stateful), ("truncation", spec.is_truncation),
        ) if flag)
        doc_lines = (spec.__doc__ or "").strip().splitlines()
        summary = doc_lines[0] if doc_lines else ""
        rows.append([type_name, arity, traits, summary])
    return rows


def cmd_blocks(args) -> None:
    """Print the block property library reference (text or markdown)."""
    rows = _block_rows()
    if getattr(args, "markdown", False):
        lines = [
            "# Block property library reference",
            "",
            "Generated by `frodo blocks --markdown`; every entry carries the",
            "full contract (validation, semantics, I/O mapping, range-aware",
            "emission) described in docs/architecture.md.",
            "",
            f"{len(rows)} supported block types:",
            "",
            "| BlockType | inputs | traits | summary |",
            "| --- | --- | --- | --- |",
        ]
        for row in rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        print("\n".join(lines))
        return
    from repro.eval.report import format_table
    short = [[r[0], r[1], r[2], r[3][:60]] for r in rows]
    print(format_table(["BlockType", "inputs", "traits", "summary"], short,
                       title=f"block property library "
                             f"({len(rows)} supported types)"))


def cmd_trace(args) -> None:
    """Trace one model through the local pipeline and export the spans."""
    from repro.ir.interp import cached_vm
    from repro.obs import (render_spans, start_trace, tracing,
                           write_chrome_trace, write_jsonl)
    from repro.sim.simulator import random_inputs
    root = start_trace("trace", model=args.model, generator=args.generator,
                       backend=args.backend, steps=args.steps)
    with root:
        with tracing.span("model.build"):
            model = _resolve_model(args.model)
        with tracing.span("codegen", generator=args.generator):
            code = make_generator(args.generator).generate(model)
        with tracing.span("inputs", seed=args.seed):
            named = random_inputs(model, seed=args.seed)
        with tracing.span("vm.acquire", backend=args.backend,
                          fuse=args.fuse):
            vm = cached_vm(code.program, backend=args.backend,
                           fuse=args.fuse)
        inputs = {code.input_buffers[n]: v for n, v in named.items()}
        vm.run(inputs, steps=args.steps)  # opens its own vm.run span
    spans = root.export()
    out = Path(args.output or f"{model.name}_trace.json")
    if args.jsonl:
        write_jsonl(out, spans, append=False)
        kind = "JSON-lines"
    else:
        write_chrome_trace(out, spans)
        kind = "Chrome trace (load in chrome://tracing or ui.perfetto.dev)"
    print(render_spans(spans))
    print(f"wrote {len(spans)} span(s) to {out} as {kind}")


def cmd_serve(args) -> None:
    """Run the compile-and-execute service until interrupted."""
    import asyncio
    from repro.serve import ServeConfig, run_server
    cache_dir = None if args.no_cache else args.cache_dir
    config = ServeConfig(host=args.host, port=args.port,
                         workers=args.workers, cache_dir=cache_dir,
                         timeout_seconds=args.request_timeout,
                         max_pending=args.max_pending,
                         allow_debug=args.debug_ops,
                         allow_shutdown=not args.no_shutdown_op,
                         max_batch=args.max_batch,
                         max_batch_wait_ms=args.max_batch_wait_ms,
                         trace_log=args.trace_log,
                         adaptive=args.adaptive,
                         promote_threshold_ms=args.promote_threshold_ms,
                         promote_min_runs=args.promote_min_runs,
                         promote_compiles=args.promote_compiles,
                         vm_cache_max=args.vm_cache_max,
                         shard=args.shard_id,
                         store=args.store)

    if args.cluster:
        _serve_cluster(args, config)
        return

    def announce(server) -> None:
        cache = cache_dir or "disabled"
        tier = ", adaptive tier: on" if args.adaptive else ""
        shard = f", shard: {args.shard_id}" if args.shard_id else ""
        print(f"frodo serve: listening on {config.host}:{server.port} "
              f"({args.workers} worker(s), artifact cache: {cache}"
              f"{tier}{shard})", flush=True)

    try:
        asyncio.run(run_server(config, announce=announce))
    except KeyboardInterrupt:
        print("frodo serve: interrupted, shutting down")


def _serve_cluster(args, template) -> None:
    """``frodo serve --cluster N``: store + N shards + router."""
    import time as _time
    from repro.serve.cluster import ClusterConfig, ClusterSupervisor
    if args.shard_id or args.store:
        raise SystemExit("--cluster spawns its own shards; "
                         "--shard-id/--store are for shard processes")
    root = args.cluster_root or (args.cache_dir + "-cluster"
                                 if not args.no_cache else ".frodo-cluster")
    cluster = ClusterConfig(shards=args.cluster, template=template,
                            workers_per_shard=max(args.workers, 1),
                            root=root)
    supervisor = ClusterSupervisor(cluster)
    port = supervisor.start()
    assert supervisor.store is not None
    print(f"frodo serve: cluster router listening on {args.host}:{port} "
          f"({args.cluster} shard(s) × {cluster.workers_per_shard} "
          f"worker(s), store {supervisor.store.address}, root {root})",
          flush=True)
    for name, shard_port in supervisor.shard_ports().items():
        print(f"frodo serve:   shard {name} on 127.0.0.1:{shard_port}",
              flush=True)
    try:
        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        print("frodo serve: interrupted, shutting down cluster")
    finally:
        # A repeated/forwarded SIGINT mid-drain must not abandon shard
        # subprocesses — the teardown sequence runs exactly once.
        import signal as _signal
        try:
            _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
        except ValueError:  # not the main thread (tests)
            pass
        supervisor.stop()


def cmd_submit(args) -> None:
    """One-shot client request against a running ``frodo serve``."""
    import json as _json
    from repro.serve.client import ServeClient, ServeRequestError
    fields: dict = {}
    if args.model:
        path = Path(args.model)
        if path.suffix in (".slx", ".mdl") and path.exists():
            fields.update(ServeClient.payload_fields(path))
        else:
            fields["model"] = args.model
    if args.op in ("compile", "run", "run_batch", "report"):
        fields["generator"] = args.generator
        fields["fuse"] = args.fuse
    if args.op in ("run", "report"):
        fields.update(backend=args.backend, steps=args.steps, seed=args.seed)
    if args.op == "run_batch":
        fields.update(backend=args.backend, steps=args.steps,
                      instances=[{"seed": args.seed + s}
                                 for s in range(args.batch)])
    if args.op in ("run", "run_batch") and args.no_outputs:
        fields["include_outputs"] = False
    try:
        with ServeClient(args.host, args.port,
                         timeout=args.timeout) as client:
            result = client.request(args.op, **fields)
    except ServeRequestError as exc:
        raise SystemExit(f"server error {exc}")
    except OSError as exc:
        raise SystemExit(
            f"cannot reach server at {args.host}:{args.port}: {exc}")
    if args.op == "metrics" and "text" in result:
        print(result["text"], end="")
    else:
        print(_json.dumps(result, indent=2))


def cmd_bench_serve(args) -> None:
    argv = []
    if args.quick:
        argv.append("--quick")
    if args.output:
        argv.extend(["--output", args.output])
    if args.cluster:
        from repro.serve.bench_cluster import main as bench_main
    else:
        from repro.serve.bench import main as bench_main
        if args.corpus:
            argv.extend(["--corpus", str(args.corpus)])
    raise SystemExit(bench_main(argv))


def _corpus_config(args):
    from repro.corpus import GenConfig
    return GenConfig(blocks=args.blocks, vector_len=args.vector_len,
                     truncation=args.truncation, stateful=args.stateful)


def cmd_corpus_gen(args) -> None:
    """Generate corpus models; write .slx files or print summaries."""
    from repro.corpus import corpus_name, generate_model, model_stats
    config = _corpus_config(args)
    out_dir = Path(args.output) if args.output else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for i in range(args.count):
        seed = args.seed + i
        model = generate_model(seed, config)
        stats = model_stats(model)
        if out_dir:
            path = out_dir / f"{corpus_name(seed, config)}.slx"
            save_slx(model, path)
            print(f"wrote {path} ({stats['blocks']} blocks, "
                  f"{stats['truncating_blocks']} truncating)")
        else:
            print(f"seed={seed} {stats['name']}: {stats['blocks']} blocks, "
                  f"{stats['connections']} connections, "
                  f"{stats['truncating_blocks']} truncating, "
                  f"{stats['stateful_blocks']} stateful")


def cmd_corpus_fuzz(args) -> None:
    """Differential-fuzz generated models across generators x backends."""
    from repro.eval.crosscheck import DEFAULT_GENERATORS
    from repro.fuzz import fuzz_corpus, make_injector
    config = _corpus_config(args)
    generators = tuple(args.generators.split(",")) if args.generators \
        else DEFAULT_GENERATORS
    inject = make_injector(args.inject) if args.inject else None
    report = fuzz_corpus(seed=args.seed, count=args.count, config=config,
                         generators=generators, steps=args.steps,
                         batch=args.batch,
                         check_simulator=not args.no_simulator,
                         inject=inject,
                         shrink_failures=not args.no_shrink,
                         reproducer_dir=args.reproducer_dir,
                         log=print)
    summary = report.summary()
    print(f"fuzzed {summary['models']} models / {summary['legs_run']} legs: "
          f"{summary['failures']} failing, "
          f"{summary['mismatches']} mismatch(es)"
          + (f", skipped backends: {', '.join(summary['backends_skipped'])}"
             if summary['backends_skipped'] else ""))
    for case in report.failures:
        for mismatch in case.mismatches[:4]:
            print(f"  seed={case.seed}: {mismatch.describe()}")
    if not report.ok:
        raise SystemExit(1)


def cmd_corpus_stats(args) -> None:
    """Aggregate structural statistics over a corpus slice."""
    from repro.corpus import generate_model, model_stats
    config = _corpus_config(args)
    totals: dict[str, int] = {}
    blocks = connections = truncating = stateful = 0
    for i in range(args.count):
        stats = model_stats(generate_model(args.seed + i, config))
        blocks += stats["blocks"]
        connections += stats["connections"]
        truncating += stats["truncating_blocks"]
        stateful += stats["stateful_blocks"]
        for type_name, n in stats["by_type"].items():
            totals[type_name] = totals.get(type_name, 0) + n
    print(f"corpus seed={args.seed} count={args.count} "
          f"(blocks={config.blocks}, vector_len={config.vector_len}, "
          f"truncation={config.truncation}):")
    print(f"  {blocks} blocks, {connections} connections; "
          f"{truncating} truncating ({100 * truncating / max(1, blocks):.1f}%), "
          f"{stateful} stateful")
    width = max(len(t) for t in totals)
    for type_name, n in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  {type_name:{width}s} {n}")


def _add_corpus_knobs(p: argparse.ArgumentParser) -> None:
    from repro.corpus import GenConfig
    defaults = GenConfig()
    p.add_argument("--seed", type=int, default=0,
                   help="first generation seed (models use seed..seed+N-1)")
    p.add_argument("--count", type=int, default=10,
                   help="number of models to generate")
    p.add_argument("--blocks", type=int, default=defaults.blocks,
                   help="target drawn-operation blocks per model")
    p.add_argument("--vector-len", type=int, default=defaults.vector_len,
                   help="primary input vector width")
    p.add_argument("--truncation", type=float, default=defaults.truncation,
                   help="data-truncation density in [0, 1)")
    p.add_argument("--stateful", type=float, default=defaults.stateful,
                   help="stateful-block (delay) density in [0, 1)")


def _add_fuse_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-fuse", dest="fuse", action="store_false",
                   default=True,
                   help="disable the IR-level loop-fusion pass "
                        "(repro.ir.fuse); fusion is on by default")


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    from repro.ir.interp import BACKENDS
    p.add_argument("--backend", default="auto", choices=list(BACKENDS),
                   help="VM execution backend: numpy-vectorized kernels "
                        "with closure fallback (auto/vector), the pure "
                        "closure interpreter (closure), or the emitted C "
                        "compiled to an in-process shared object (native; "
                        "needs a C toolchain, fails with a typed error "
                        "if none is found)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="frodo",
        description="FRODO reproduction: redundancy-eliminating code "
                    "generation for data-intensive Simulink models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="print the Table 1 inventory") \
        .set_defaults(func=cmd_list_models)

    p = sub.add_parser("show-ranges",
                       help="print per-block calculation ranges")
    p.add_argument("model", help="zoo model name or .slx path")
    p.set_defaults(func=cmd_show_ranges)

    p = sub.add_parser("generate", help="generate C code for a model")
    p.add_argument("model", help="zoo model name or .slx/.mdl path")
    p.add_argument("-g", "--generator", default="frodo",
                   choices=[*ALL_GENERATORS, *FRODO_VARIANTS])
    p.add_argument("-o", "--output", help="write C to this path")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("export", help="write a zoo model as .slx")
    p.add_argument("model")
    p.add_argument("output")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("validate",
                       help="random-testing validation vs simulation")
    p.add_argument("model")
    p.add_argument("--cases", type=int, default=5)
    p.add_argument("--steps", type=int, default=3)
    _add_backend_flag(p)
    _add_fuse_flag(p)
    p.set_defaults(func=cmd_validate)

    sub.add_parser("table2", help="regenerate Table 2 (x86 profiles)") \
        .set_defaults(func=cmd_table2)

    p = sub.add_parser("figure6", help="regenerate Figure 6 (ARM)")
    p.add_argument("--profile", default="arm-gcc",
                   choices=["arm-gcc", "arm-clang"])
    p.set_defaults(func=cmd_figure6)

    sub.add_parser("memory", help="regenerate the §5 memory study") \
        .set_defaults(func=cmd_memory)

    p = sub.add_parser("blocks", help="list the block property library")
    p.add_argument("--markdown", action="store_true")
    p.set_defaults(func=cmd_blocks)

    p = sub.add_parser("crosscheck",
                       help="model x generator x backend consistency matrix")
    p.add_argument("model", nargs="?", default=None)
    p.add_argument("--native", action="store_true",
                   help="also compile and run with the host C compiler")
    p.add_argument("--cases", type=int, default=2)
    p.add_argument("--steps", type=int, default=2)
    _add_backend_flag(p)
    _add_fuse_flag(p)
    p.set_defaults(func=cmd_crosscheck)

    p = sub.add_parser("dot",
                       help="export the dataflow graph as Graphviz DOT")
    p.add_argument("model")
    p.add_argument("-o", "--output")
    p.add_argument("--no-ranges", action="store_true")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("compile",
                       help="compile the emitted C natively and check it")
    p.add_argument("model")
    p.add_argument("-g", "--generator", default="frodo",
                   choices=[*ALL_GENERATORS, *FRODO_VARIANTS])
    p.add_argument("--steps", type=int, default=1)
    p.add_argument("--repetitions", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--keep-sources", metavar="DIR", default=None)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("profile",
                       help="per-block cost breakdown of generated code")
    p.add_argument("model")
    p.add_argument("-g", "--generator", default="frodo",
                   choices=[*ALL_GENERATORS, *FRODO_VARIANTS])
    p.add_argument("--profile", default="x86-gcc",
                   choices=["x86-gcc", "x86-clang", "arm-gcc", "arm-clang"])
    p.add_argument("--steps", type=int, default=1)
    _add_backend_flag(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report",
                       help="regenerate every table/figure into a directory")
    p.add_argument("-o", "--output", default="frodo_report")
    p.add_argument("--no-sweeps", action="store_true")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("serve",
                       help="run the compile-and-execute service "
                            "(NDJSON over TCP + HTTP shim)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7433)
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (0 = inline, tests only)")
    p.add_argument("--cache-dir", default=".frodo-serve-cache",
                   help="persistent artifact cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk artifact cache")
    p.add_argument("--request-timeout", type=float, default=60.0,
                   help="per-request deadline in seconds")
    p.add_argument("--max-pending", type=int, default=16,
                   help="queued requests before shedding with 'busy'")
    p.add_argument("--debug-ops", action="store_true",
                   help="enable debug ops (sleep) for timeout testing")
    p.add_argument("--no-shutdown-op", action="store_true",
                   help="ignore the protocol-level shutdown op")
    p.add_argument("--max-batch", type=int, default=8,
                   help="coalesce up to N concurrent compatible run "
                        "requests into one batched worker call "
                        "(1 = disable coalescing)")
    p.add_argument("--max-batch-wait-ms", type=float, default=2.0,
                   help="max time a run request waits for batch "
                        "companions before flushing")
    p.add_argument("--trace-log", default=None, metavar="PATH",
                   help="trace every request and append finished spans "
                        "to this JSON-lines file")
    p.add_argument("--adaptive", action="store_true",
                   help="tiered execution for backend=auto: serve on the "
                        "vector VM immediately and promote hot models to "
                        "native via background compilation")
    p.add_argument("--promote-threshold-ms", type=float, default=None,
                   metavar="MS",
                   help="fixed promotion threshold in estimated vector-"
                        "work milliseconds (default: seeded per model "
                        "from the cost model's compile estimate)")
    p.add_argument("--promote-min-runs", type=int, default=2,
                   help="requests a model needs before it is "
                        "promotion-eligible")
    p.add_argument("--promote-compiles", type=int, default=1,
                   help="background native compiles in flight per worker")
    p.add_argument("--vm-cache-max", type=int, default=None, metavar="N",
                   help="warm per-worker VM cache bound (LRU beyond)")
    p.add_argument("--cluster", type=int, default=0, metavar="N",
                   help="run a sharded fleet: N shard processes behind a "
                        "consistent-hashing router plus a shared "
                        "artifact store (see docs/cluster.md)")
    p.add_argument("--cluster-root", default=None, metavar="DIR",
                   help="cluster state directory (store + per-shard "
                        "caches; default <cache-dir>-cluster)")
    p.add_argument("--shard-id", default=None, metavar="NAME",
                   help="shard identity (set by the cluster supervisor; "
                        "stamps response meta and the metrics shard "
                        "label)")
    p.add_argument("--store", default=None, metavar="HOST:PORT",
                   help="shared artifact store to read through and "
                        "publish to (set by the cluster supervisor)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("trace",
                       help="run one model through the pipeline and "
                            "export a span timeline")
    p.add_argument("model", help="zoo model name or .slx/.mdl path")
    p.add_argument("-g", "--generator", default="frodo",
                   choices=[*ALL_GENERATORS, *FRODO_VARIANTS])
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default=None,
                   help="output path (default <model>_trace.json)")
    p.add_argument("--jsonl", action="store_true",
                   help="write flat JSON-lines spans instead of the "
                        "Chrome trace-event format")
    _add_backend_flag(p)
    _add_fuse_flag(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("submit",
                       help="send one request to a running frodo serve")
    p.add_argument("op", choices=["ping", "compile", "run", "run_batch",
                                  "ranges", "report", "metrics", "shutdown"])
    p.add_argument("model", nargs="?", default=None,
                   help="zoo model name or .slx/.mdl file to upload")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7433)
    p.add_argument("--timeout", type=float, default=120.0)
    p.add_argument("-g", "--generator", default="frodo",
                   choices=[*ALL_GENERATORS, *FRODO_VARIANTS])
    p.add_argument("--steps", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch", type=int, default=4,
                   help="run_batch only: number of instances "
                        "(seeded --seed .. --seed+N-1)")
    p.add_argument("--no-outputs", action="store_true",
                   help="omit output arrays from run results")
    _add_backend_flag(p)
    _add_fuse_flag(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("bench-serve",
                       help="serving throughput/latency benchmark "
                            "(writes BENCH_serve.json)")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--corpus", type=int, default=0, metavar="N",
                   help="also bench hot-vs-diverse traffic over N distinct "
                        "generated corpus fingerprints")
    p.add_argument("--cluster", action="store_true",
                   help="run the sharded-fleet benchmark instead "
                        "(writes BENCH_cluster.json: shard scaling, "
                        "cold-compile dedup, kill recovery)")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_bench_serve)

    p = sub.add_parser("corpus",
                       help="seeded synthetic model corpus: generate, "
                            "differential-fuzz, or summarize")
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)

    cg = corpus_sub.add_parser("gen",
                               help="generate models (print stats or "
                                    "write .slx files)")
    _add_corpus_knobs(cg)
    cg.add_argument("-o", "--output", default=None, metavar="DIR",
                    help="write each model as DIR/<name>.slx")
    cg.set_defaults(func=cmd_corpus_gen)

    cf = corpus_sub.add_parser("fuzz",
                               help="differential fuzz: all generators x "
                                    "backends x fuse x batch, bitwise "
                                    "outputs + exact element-op counts")
    _add_corpus_knobs(cf)
    cf.add_argument("--steps", type=int, default=3)
    cf.add_argument("--batch", type=int, default=3,
                    help="batch width for the run_batch legs "
                         "(1 disables them)")
    cf.add_argument("--generators", default=None,
                    help="comma-separated generator subset "
                         "(default: all four)")
    cf.add_argument("--no-simulator", action="store_true",
                    help="skip the reference-simulator comparison")
    cf.add_argument("--no-shrink", action="store_true",
                    help="do not shrink failing models")
    cf.add_argument("--reproducer-dir", default=None, metavar="DIR",
                    help="save shrunk failing models as .slx here")
    cf.add_argument("--inject", default=None, metavar="BLOCKTYPE",
                    help="deliberately corrupt outputs of models computing "
                         "this block type (harness self-test / shrink demo)")
    cf.set_defaults(func=cmd_corpus_fuzz)

    cs = corpus_sub.add_parser("stats",
                               help="aggregate block statistics over a "
                                    "corpus slice")
    _add_corpus_knobs(cs)
    cs.set_defaults(func=cmd_corpus_stats)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main(sys.argv[1:])
