"""Synchronous client for the serve protocol.

Used by the test suite, the benchmark harness, ``frodo submit``, and the
CI smoke job (``python -m repro.serve.client --self-test``).  One client
owns one TCP connection and issues requests in order; open several
clients for concurrency (the server multiplexes connections, not
requests within a connection).
"""

from __future__ import annotations

import base64
import json
import socket
import sys
from pathlib import Path
from typing import Any

from repro.serve.protocol import MAX_LINE_BYTES, jsonable


class ServeRequestError(Exception):
    """Server answered with a typed error (``ok: false``)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"[{error_type}] {message}")
        self.error_type = error_type
        self.message = message


class ServeClient:
    """Line-delimited JSON client; context-manager friendly."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7433,
                 timeout: float = 120.0, retry_resets: bool = True):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Reconnect and retry once when the connection drops mid-request.
        #: A draining shard (cluster rolling restart) closes its listener
        #: between requests; every op is idempotent, so one transparent
        #: retry turns that into a non-event for callers.
        self.retry_resets = retry_resets
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw request/response ---------------------------------------------

    def request_raw(self, op: str, **fields: Any) -> dict:
        """Send one request, return the full response object.

        With ``retry_resets`` (the default), a connection reset before a
        reply arrives is retried exactly once on a fresh connection —
        the window a draining shard leaves open during a cluster rolling
        restart.  A reset on the retry propagates.
        """
        self._next_id += 1
        req = {"id": self._next_id, "op": op, **fields}
        line = (json.dumps(jsonable(req), separators=(",", ":")) + "\n")
        attempts = 2 if self.retry_resets else 1
        for attempt in range(attempts):
            try:
                self.connect()
                assert self._sock is not None and self._file is not None
                self._sock.sendall(line.encode())
                reply = self._file.readline(MAX_LINE_BYTES)
                if not reply:
                    raise ConnectionError("server closed the connection")
            except (ConnectionError, BrokenPipeError, OSError) as exc:
                self.close()
                # Timeouts are not resets: the server may still be
                # working on the request — retrying would double-submit
                # the wait, not recover a drop.
                if isinstance(exc, TimeoutError) \
                        or attempt + 1 >= attempts:
                    raise
                continue
            resp = json.loads(reply)
            if resp.get("id") not in (None, self._next_id):
                self.close()
                raise ConnectionError(
                    f"response id {resp.get('id')!r} does not match request "
                    f"id {self._next_id}")
            return resp
        raise ConnectionError("unreachable")  # pragma: no cover

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request, return ``result``; raise on typed errors."""
        resp = self.request_raw(op, **fields)
        if resp.get("ok"):
            return resp["result"]
        error = resp.get("error", {})
        raise ServeRequestError(error.get("type", "internal"),
                                error.get("message", "unknown error"))

    # -- op wrappers -------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def compile(self, model: str | None = None, generator: str = "frodo",
                **fields: Any) -> dict:
        return self.request("compile", model=model, generator=generator,
                            **fields)

    def run(self, model: str | None = None, generator: str = "frodo",
            backend: str = "auto", steps: int = 1, seed: int = 0,
            **fields: Any) -> dict:
        return self.request("run", model=model, generator=generator,
                            backend=backend, steps=steps, seed=seed,
                            **fields)

    def run_batch(self, model: str | None = None, generator: str = "frodo",
                  backend: str = "auto", steps: int = 1,
                  instances: list | int = 2, **fields: Any) -> dict:
        """Batched execution: ``instances`` is a list of per-instance
        objects (``seed``/``inputs``/``include_outputs``), or an int N as
        shorthand for N seeded instances 0..N-1."""
        if isinstance(instances, int):
            instances = [{"seed": s} for s in range(instances)]
        return self.request("run_batch", model=model, generator=generator,
                            backend=backend, steps=steps,
                            instances=instances, **fields)

    def ranges(self, model: str | None = None, **fields: Any) -> dict:
        return self.request("ranges", model=model, **fields)

    def report(self, model: str | None = None, **fields: Any) -> dict:
        return self.request("report", model=model, **fields)

    def metrics(self, render: bool = True) -> dict:
        return self.request("metrics", render=render)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # -- uploads -----------------------------------------------------------

    @staticmethod
    def payload_fields(path: str | Path) -> dict:
        """Build ``model_payload``/``model_format`` fields from a file."""
        path = Path(path)
        fmt = "mdl" if path.suffix == ".mdl" else "slx"
        return {"model_payload": base64.b64encode(path.read_bytes()).decode(),
                "model_format": fmt}

    # -- smoke test --------------------------------------------------------

    def self_test(self, model: str = "Motivating",
                  generator: str = "frodo") -> list[tuple[str, bool, str]]:
        """End-to-end smoke checks against a live server.

        Returns ``(name, passed, detail)`` rows; used by the CI smoke job
        via ``python -m repro.serve.client --self-test``.
        """
        checks: list[tuple[str, bool, str]] = []

        def check(name: str, passed: bool, detail: str = "") -> None:
            checks.append((name, bool(passed), detail))

        pong = self.ping()
        check("ping", pong.get("pong") is True, str(pong))
        compiled = self.compile(model, generator=generator)
        check("compile", compiled["generator"] == generator,
              f"stats={compiled['stats']}")
        first = self.run(model, generator=generator, steps=2,
                         include_outputs=False)
        second = self.run(model, generator=generator, steps=2,
                          include_outputs=False)
        check("run deterministic",
              first["output_sha256"] == second["output_sha256"],
              first["output_sha256"][:16])
        ranges = self.ranges(model)
        check("ranges", ranges["model"] == compiled["model"]
              and len(ranges["blocks"]) > 0,
              f"{ranges['optimizable_blocks']} optimizable")
        batch = self.run_batch(model, generator=generator, steps=2,
                               instances=[{"seed": 0,
                                           "include_outputs": False},
                                          {"seed": 7,
                                           "include_outputs": False},
                                          {"seed": 0,
                                           "include_outputs": False}])
        rows = batch["results"]
        check("run_batch executes all instances",
              batch["executed"] == 3 and all(r.get("ok") for r in rows),
              f"executed={batch.get('executed')}")
        check("run_batch per-instance outputs",
              rows[0]["output_sha256"] == rows[2]["output_sha256"]
              and rows[0]["output_sha256"] == first["output_sha256"]
              and rows[0]["output_sha256"] != rows[1]["output_sha256"],
              rows[0]["output_sha256"][:16])
        # Concurrent identical runs from independent connections: the
        # coalescer (when enabled server-side) merges them into batched
        # worker calls; either way every reply must match the sequential
        # result bit-for-bit.
        import threading
        shas: list = [None] * 8

        def _one(slot: int) -> None:
            with ServeClient(self.host, self.port,
                             timeout=self.timeout) as peer:
                result = peer.run(model, generator=generator, steps=2,
                                  include_outputs=False)
                shas[slot] = result["output_sha256"]

        threads = [threading.Thread(target=_one, args=(i,))
                   for i in range(len(shas))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        occupancy = [row for row in
                     self.metrics()["snapshot"]["batch_occupancy"]]
        max_occ = occupancy[0]["max_seconds"] if occupancy else 0
        check("concurrent runs identical",
              all(s == first["output_sha256"] for s in shas),
              f"8 clients, max batch occupancy {max_occ:g}")
        traced = self.run(model, generator=generator, steps=1,
                          include_outputs=False, trace=True)

        def _span_names(nodes) -> set:
            names: set = set()
            stack = list(nodes)
            while stack:
                node = stack.pop()
                names.add(node.get("name"))
                stack.extend(node.get("children", ()))
            return names

        names = _span_names(traced.get("trace", ()))
        check("trace spans cover the pipeline",
              "request" in names and "worker.handle" in names
              and any(n and n.startswith("vm.") for n in names),
              ",".join(sorted(n for n in names if n)))
        try:
            self.run("NoSuchModelZZZ")
            check("typed unknown_model error", False, "no error raised")
        except ServeRequestError as exc:
            check("typed unknown_model error",
                  exc.error_type == "unknown_model", exc.error_type)
        snap = self.metrics()["snapshot"]
        total_requests = sum(row["value"]
                             for row in snap["requests_total"])
        check("metrics counted requests", total_requests >= 5,
              f"{total_requests} requests")
        # Drain resilience: sabotage our own connection and rely on the
        # reset-retry path to reconnect — what a shard drain during a
        # cluster rolling restart looks like from the outside.
        if self.retry_resets and self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            pong = self.ping()
            check("retries through connection reset",
                  pong.get("pong") is True,
                  "reconnected after mid-session socket shutdown")
        return checks


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.client``: one-shot requests / self-test."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="one-shot client for a running frodo serve instance")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7433)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--self-test", action="store_true",
                        help="run the end-to-end smoke checks and exit")
    parser.add_argument("op", nargs="?", help="operation to submit")
    parser.add_argument("model", nargs="?", default=None)
    args = parser.parse_args(argv)

    with ServeClient(args.host, args.port, timeout=args.timeout) as client:
        if args.self_test:
            checks = client.self_test()
            failed = [c for c in checks if not c[1]]
            for name, passed, detail in checks:
                print(f"{'PASS' if passed else 'FAIL'} {name:32s} {detail}")
            print(f"{len(checks) - len(failed)}/{len(checks)} checks passed")
            return 1 if failed else 0
        if not args.op:
            parser.error("need an op (or --self-test)")
        fields = {"model": args.model} if args.model else {}
        result = client.request(args.op, **fields)
        print(json.dumps(result, indent=2))
        return 0


if __name__ == "__main__":
    sys.exit(main())
