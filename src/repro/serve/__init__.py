"""``repro.serve`` — a concurrent compile-and-execute service.

Turns the single-shot reproduction pipeline (model → analysis → ranges →
codegen → VM) into a long-running system: an asyncio front-end speaking
line-delimited JSON (plus a minimal HTTP shim), a pool of worker
processes with warm per-worker VM caches, a persistent content-addressed
artifact cache that lets a restarted server skip code generation
entirely, and a metrics registry with request counters, latency
histograms and cache hit rates.

See ``docs/serving.md`` for the protocol, error taxonomy, cache layout
and tuning knobs.
"""

from repro.serve.cache import (Artifact, ArtifactCache, artifact_key,  # noqa: F401
                               model_fingerprint)
from repro.serve.metrics import MetricsRegistry  # noqa: F401
from repro.serve.pool import PoolConfig, WorkerPool  # noqa: F401
from repro.serve.protocol import (ERROR_TYPES, OPS, PROTOCOL_VERSION,  # noqa: F401
                                  ServeError)
from repro.serve.server import (ReproServer, ServeConfig, ServerThread,  # noqa: F401
                                run_server)


def __getattr__(name: str):
    # Lazy so `python -m repro.serve.client` does not double-import the
    # client module (runpy would warn about the pre-imported copy).
    if name in ("ServeClient", "ServeRequestError"):
        from repro.serve import client
        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
