"""``repro.serve`` — a concurrent compile-and-execute service.

Turns the single-shot reproduction pipeline (model → analysis → ranges →
codegen → VM) into a long-running system: an asyncio front-end speaking
line-delimited JSON (plus a minimal HTTP shim), a pool of worker
processes with warm per-worker VM caches, a persistent content-addressed
artifact cache that lets a restarted server skip code generation
entirely, and a metrics registry with request counters, latency
histograms and cache hit rates.

Beyond one process, the same protocol scales out: ``frodo serve
--cluster N`` runs N shard servers behind a consistent-hashing router
(:mod:`repro.serve.router`) with a shared content-addressed artifact
store (:mod:`repro.serve.store`) so the fleet compiles each artifact —
including native ``.so``s — once.  See ``docs/serving.md`` and
``docs/cluster.md``.
"""

from repro.serve.cache import (Artifact, ArtifactCache, artifact_key,  # noqa: F401
                               model_fingerprint)
from repro.serve.metrics import (MetricsRegistry, merge_snapshots,  # noqa: F401
                                 render_snapshot)
from repro.serve.pool import PoolConfig, WorkerPool  # noqa: F401
from repro.serve.protocol import (ERROR_TYPES, OPS, PROTOCOL_VERSION,  # noqa: F401
                                  ServeError)
from repro.serve.server import (ReproServer, ServeConfig, ServerThread,  # noqa: F401
                                run_server)
from repro.serve.store import (HeatStore, LocalStore, RemoteStore,  # noqa: F401
                               SharedArtifactCache, StoreServer)


_LAZY = {
    "ServeClient": "repro.serve.client",
    "ServeRequestError": "repro.serve.client",
    "HashRing": "repro.serve.router",
    "RouterServer": "repro.serve.router",
    "RouterThread": "repro.serve.router",
    "ClusterConfig": "repro.serve.cluster",
    "ClusterSupervisor": "repro.serve.cluster",
}


def __getattr__(name: str):
    # Lazy so `python -m repro.serve.client` does not double-import the
    # client module (runpy would warn about the pre-imported copy), and
    # so importing repro.serve does not pull in asyncio router machinery
    # for plain single-server users.
    target = _LAZY.get(name)
    if target is not None:
        import importlib
        return getattr(importlib.import_module(target), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
