"""Process worker pool: warm caches, timeouts, crash recovery, load shed.

Each worker is a separate OS process holding its own warm state — the
module-level VM cache (:func:`repro.ir.interp.cached_vm`) plus an
:class:`~repro.serve.cache.ArtifactCache` handle on the shared on-disk
store.  Process isolation is what makes concurrency safe here: a
:class:`~repro.ir.interp.VirtualMachine` is not reentrant (its buffers
and counters mutate in place), so the pool guarantees each worker runs
exactly one request at a time and shares nothing mutable across workers
except the atomically-written artifact directory — which also holds the
``backend="native"`` shared-object store (``<cache_dir>/native/``):
``.so`` installs are atomic renames keyed by content, so the first
worker to build a program's library pays the compiler once and every
other worker (and every restart) dlopens the same file.

Dispatch policy:

* a request takes an idle worker if one is free, otherwise waits in a
  **bounded** backlog; when ``max_pending`` waiters are already queued
  the request is shed immediately with a typed ``busy`` error (callers
  get fast feedback instead of an unbounded queue hiding the overload);
* every request has a deadline (``timeout_seconds``, per-request
  override allowed below the server cap): on expiry the worker is
  **killed** — mid-flight cancellation of arbitrary Python is only
  reliable at process granularity — and a fresh worker is spawned;
* if a worker dies mid-request (crash, OOM-kill), the request is retried
  once on a fresh worker: every op the pool executes is idempotent (pure
  functions of the request plus an idempotent cache write), so a retry
  can at worst redo work, never double-apply it.  Timeouts are *not*
  retried — the retry would very likely time out too and double the
  damage of a poison request.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
from dataclasses import dataclass

from repro.obs import tracing
from repro.serve.protocol import ServeError

log = logging.getLogger("repro.serve.pool")


def _start_context():
    """Prefer fork (instant warm workers on Linux); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _build_cache(config: "PoolConfig"):
    """The worker's artifact cache: shared (store-backed) or plain local."""
    if not config.cache_dir:
        return None
    if config.store:
        from repro.serve.store import RemoteStore, SharedArtifactCache
        return SharedArtifactCache(config.cache_dir,
                                   RemoteStore.parse(config.store))
    from repro.serve.cache import ArtifactCache
    return ArtifactCache(config.cache_dir)


def _heat_store(cache):
    """Where this process persists adaptive heat (see docs/cluster.md).

    Store-backed caches share heat fleet-wide next to the artifacts; a
    plain local cache keeps it under ``<cache_dir>/heat/`` so a restarted
    single server also resumes from observed heat.
    """
    if cache is None:
        return None
    from repro.serve.store import HeatStore, LocalStore
    if hasattr(cache, "heat_store"):
        return cache.heat_store()
    return HeatStore(LocalStore(cache.root))


def _configure_runtime(cache, config: "PoolConfig") -> None:
    """Apply per-process serving knobs: VM cache bound and the adaptive
    promotion controller.  Called once per worker process (and once for
    the inline ``workers=0`` path), before any request is handled."""
    if config.vm_cache_max is not None:
        from repro.ir.interp import set_vm_cache_limit
        set_vm_cache_limit(config.vm_cache_max)
    if config.adaptive is not None:
        from repro.serve import adaptive
        so_dir = cache.native_dir if cache is not None else None
        adaptive.configure(config.adaptive, so_cache_dir=so_dir,
                           heat_store=_heat_store(cache),
                           native_cache=cache)


def _worker_main(conn, config: "PoolConfig") -> None:
    """Worker process loop: recv request dict, send response dict."""
    from repro.serve.handlers import handle_request
    from repro.serve.protocol import ServeError as WorkerServeError
    cache = _build_cache(config)
    _configure_runtime(cache, config)
    while True:
        try:
            req = conn.recv()
        except (EOFError, OSError):
            break
        if req is None:  # shutdown sentinel
            break
        try:
            result, meta = handle_request(req, cache,
                                          allow_debug=config.allow_debug,
                                          shard=config.shard)
            resp = {"ok": True, "result": result, "meta": meta}
        except WorkerServeError as exc:
            resp = {"ok": False, "error_type": exc.error_type,
                    "message": exc.message}
        except Exception as exc:  # noqa: BLE001 — workers must not die on bugs
            resp = {"ok": False, "error_type": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send(resp)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerCrash(Exception):
    """The worker process died before producing a response."""


class WorkerTimeout(Exception):
    """The request exceeded its deadline; the worker was killed."""


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, ctx, config: "PoolConfig"):
        parent, child = ctx.Pipe()
        self.conn = parent
        self.proc = ctx.Process(
            target=_worker_main, args=(child, config), daemon=True)
        self.proc.start()
        child.close()
        # What the worker was last asked to do — read back when it has to
        # be killed, so the respawn log names the request that took it
        # down.  Trace ids propagate on *every* request (recording or
        # not), which is what keeps these attributions complete.
        self.last_op: str | None = None
        self.last_trace_id: str | None = None
        self.last_span_id: str | None = None

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def call(self, req: dict, timeout: float) -> dict:
        """Blocking request/response with a hard deadline."""
        self.last_op = req.get("op")
        ctx = req.get("_trace")
        if isinstance(ctx, dict):
            self.last_trace_id = ctx.get("trace_id")
            self.last_span_id = ctx.get("parent_id")
        else:
            self.last_trace_id = self.last_span_id = None
        try:
            self.conn.send(req)
        except (BrokenPipeError, OSError):
            raise WorkerCrash(f"worker {self.pid} pipe closed on send")
        if not self.conn.poll(timeout):
            raise WorkerTimeout(
                f"no response from worker {self.pid} within {timeout:g}s")
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            raise WorkerCrash(f"worker {self.pid} died mid-request")

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):
            pass
        self.proc.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short grace period, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=2)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5)
        try:
            self.conn.close()
        except OSError:
            pass


@dataclass
class PoolConfig:
    workers: int = 2
    cache_dir: str | None = None
    timeout_seconds: float = 60.0
    #: Requests allowed to wait for a worker before shedding with ``busy``.
    max_pending: int = 16
    allow_debug: bool = False
    #: :class:`~repro.serve.adaptive.AdaptiveConfig` enabling obs-driven
    #: background promotion of hot ``backend="auto"`` programs to native.
    #: ``None`` (the default) leaves the adaptive tier off.
    adaptive: object | None = None
    #: Per-worker warm VM cache bound (``None`` keeps the interp default).
    vm_cache_max: int | None = None
    #: ``host:port`` of a shared artifact store; workers then build a
    #: :class:`~repro.serve.store.SharedArtifactCache` (remote
    #: read-through + publish) instead of a plain local cache.
    store: str | None = None
    #: Shard identity stamped into response meta and metrics labels
    #: (cluster mode; None for plain single-process servers).
    shard: str | None = None


class WorkerPool:
    """Fixed-size pool of single-request-at-a-time worker processes.

    Thread-safe: ``execute()`` may be called from many dispatcher threads
    (the asyncio server funnels requests through its executor).  With
    ``workers=0`` the pool runs requests inline in the calling thread —
    no isolation, no timeout enforcement — which keeps unit tests and
    one-shot CLI usage cheap.
    """

    def __init__(self, config: PoolConfig, metrics=None):
        self.config = config
        self.metrics = metrics
        self._ctx = _start_context()
        self._idle: list[_Worker] = []
        self._cond = threading.Condition()
        self._pending = 0
        self._closed = False
        self._inline_cache = None
        if config.workers == 0:
            self._inline_cache = _build_cache(config)
            _configure_runtime(self._inline_cache, config)
        else:
            for _ in range(config.workers):
                self._idle.append(self._spawn())

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> _Worker:
        if self.metrics is not None:
            self.metrics.record_pool("spawned")
        return _Worker(self._ctx, self.config)

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers, self._idle = self._idle, []
            self._cond.notify_all()
        for worker in workers:
            worker.stop()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------

    def _acquire(self) -> _Worker:
        with self._cond:
            if self._closed:
                raise ServeError("shutting_down", "pool is closed")
            if not self._idle and self._pending >= self.config.max_pending:
                if self.metrics is not None:
                    self.metrics.record_pool("shed")
                raise ServeError(
                    "busy",
                    f"all {self.config.workers} workers busy and "
                    f"{self._pending} requests already waiting; retry later")
            self._pending += 1
            try:
                while not self._idle:
                    self._cond.wait()
                    if self._closed:
                        raise ServeError("shutting_down", "pool is closed")
                return self._idle.pop()
            finally:
                self._pending -= 1

    def _release(self, worker: _Worker) -> None:
        with self._cond:
            if self._closed:
                worker.stop()
                return
            self._idle.append(worker)
            self._cond.notify()

    def execute(self, req: dict) -> tuple[dict, dict]:
        """Run one request on the pool; returns ``(result, meta)``.

        Raises :class:`ServeError` for every failure mode (including the
        worker-side typed errors, re-raised here).
        """
        if self.config.workers == 0:
            from repro.serve.handlers import handle_request
            return handle_request(req, self._inline_cache,
                                  allow_debug=self.config.allow_debug,
                                  shard=self.config.shard)

        timeout = self.config.timeout_seconds
        override = req.get("timeout_seconds")
        if isinstance(override, (int, float)) and 0 < override:
            timeout = min(float(override), timeout)

        # execute() runs on the server's executor threads, where the
        # dispatching task's contextvars are invisible — the trace
        # position rides in req["_trace"] instead (see repro.obs).
        trace_ctx = req.get("_trace")
        root = tracing.resume(trace_ctx, "pool.execute", op=req.get("op"))
        with root:
            result, meta = self._run_attempts(req, trace_ctx, timeout)
        local = root.export()
        if local:
            meta["spans"] = list(meta.get("spans", ())) + local
        return result, meta

    def _run_attempts(self, req: dict, trace_ctx: dict | None,
                      timeout: float) -> tuple[dict, dict]:
        last_crash: WorkerCrash | None = None
        for attempt in (1, 2):
            with tracing.span("pool.acquire"):
                worker = self._acquire()
            replacement = None
            try:
                dispatch = tracing.span(
                    "pool.dispatch", worker_pid=worker.pid, attempt=attempt)
                with dispatch:
                    wire = req
                    if isinstance(trace_ctx, dict) and dispatch.span_id:
                        # Re-point the carrier at this dispatch span so
                        # the worker's spans nest beneath it.
                        wire = dict(req)
                        wire["_trace"] = dict(trace_ctx,
                                              parent_id=dispatch.span_id)
                    resp = worker.call(wire, timeout)
            except WorkerTimeout:
                self._log_worker_death(worker, f"timeout after {timeout:g}s")
                worker.kill()
                replacement = self._spawn()
                if self.metrics is not None:
                    self.metrics.record_pool("timed_out")
                raise ServeError(
                    "timeout",
                    f"request exceeded {timeout:g}s; worker was recycled")
            except WorkerCrash as exc:
                self._log_worker_death(worker, f"crash ({exc})")
                worker.kill()
                replacement = self._spawn()
                if self.metrics is not None:
                    self.metrics.record_pool("crashed")
                last_crash = exc
                if attempt == 1:
                    if self.metrics is not None:
                        self.metrics.record_pool("retried")
                    continue
                break
            finally:
                self._release(replacement if replacement is not None
                              else worker)
            if resp.get("ok"):
                meta = resp.get("meta", {})
                meta["attempts"] = attempt
                return resp["result"], meta
            raise ServeError(resp.get("error_type", "internal"),
                             resp.get("message", "worker error"))
        raise ServeError(
            "worker_crash",
            f"worker died twice on this request ({last_crash}); giving up")

    @staticmethod
    def _log_worker_death(worker: _Worker, cause: str) -> None:
        """Attribute a kill+respawn to the request the worker last held."""
        log.warning(
            "killing worker pid=%s after %s; last op=%s trace_id=%s "
            "span_id=%s; spawning replacement", worker.pid, cause,
            worker.last_op, worker.last_trace_id, worker.last_span_id)

    # -- introspection -----------------------------------------------------

    def ping_all(self) -> list[dict]:
        """Round-trip every worker once (warm-up / smoke check).

        Holds all workers while pinging so each worker is reached exactly
        once (plain ``execute`` would keep re-grabbing the same idle
        worker off the LIFO free list).
        """
        if self.config.workers == 0:
            result, _ = self.execute({"op": "ping"})
            return [result]
        workers = [self._acquire() for _ in range(self.config.workers)]
        try:
            return [w.call({"op": "ping"}, self.config.timeout_seconds)
                    .get("result", {}) for w in workers]
        finally:
            for w in workers:
                self._release(w)
