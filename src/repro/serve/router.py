"""Cluster router: one front door for a fleet of serve shards.

``frodo serve --cluster N`` runs N single-worker shard servers plus this
router.  The router speaks the exact same wire protocol as a plain
server (NDJSON + the HTTP shim) — clients cannot tell the difference —
and forwards every model-bound request to a shard chosen by
**consistent hashing on the model fingerprint** (the uploaded payload's
digest, or the zoo model name).  Stickiness is the point: each shard
keeps a hot VM / ``.so`` cache for *its* slice of the fingerprint
space, so the fleet's warm footprint is the union of the slices rather
than N copies of everything.

Failure handling is retry-over-the-ring: a request whose preferred
shard is unreachable (killed, draining) is transparently retried
against the next shards in its preference order — every op is
idempotent, so a retry after a mid-request shard death is safe.  A
shard that refuses with ``shutting_down`` is marked down and probed in
the background until it answers ``ping`` again (the supervisor respawns
killed shards; see :mod:`repro.serve.cluster`).

The router answers ``ping`` itself (``role: "router"`` plus the shard
roster) and serves **fleet-merged metrics**: the ``metrics`` op and
``GET /metrics`` gather every live shard's snapshot and merge them with
:func:`repro.serve.metrics.merge_snapshots`, so one scrape sees the
whole cluster with per-shard labels intact.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import threading
from dataclasses import replace

from repro.obs import tracing
from repro.serve.metrics import merge_snapshots, render_snapshot
from repro.serve.protocol import PROTOCOL_VERSION, MAX_LINE_BYTES, ServeError, encode
from repro.serve.server import ReproServer, ServeConfig, ServerThread

#: Virtual nodes per shard on the hash ring.  Enough that removing one
#: shard of N spreads its slice roughly evenly over the survivors.
VNODES = 64

#: Outer retry cycles over the ring before a request is failed.  Rides
#: out the window where a killed shard's replacement is still booting.
RETRY_CYCLES = 3

#: Pause between retry cycles (seconds).
RETRY_BACKOFF = 0.2

#: How often a down shard is probed with ``ping``.
PROBE_INTERVAL = 0.25


class ShardUnreachable(Exception):
    """The shard did not produce a reply (connect/read failure)."""


class HashRing:
    """Consistent hash ring over shard names (sha256, :data:`VNODES`)."""

    def __init__(self, nodes=(), vnodes: int = VNODES):
        self.vnodes = vnodes
        self.nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, node: str) -> None:
        if node in self.nodes:
            return
        self.nodes.add(node)
        for v in range(self.vnodes):
            bisect.insort(self._points, (self._hash(f"{node}#{v}"), node))

    def remove(self, node: str) -> None:
        if node not in self.nodes:
            return
        self.nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """Distinct nodes in ring order from ``key``'s hash point.

        The first element is the key's home shard; the rest are the
        fallback order a failed forward walks.  Deterministic for a
        fixed membership — that is what makes per-shard caches sticky.
        """
        if not self._points:
            return []
        want = len(self.nodes) if n is None else min(n, len(self.nodes))
        start = bisect.bisect_left(self._points, (self._hash(key), ""))
        out: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._points)):
            _, node = self._points[(start + i) % len(self._points)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= want:
                    break
        return out

    def node(self, key: str) -> str | None:
        pref = self.preference(key, 1)
        return pref[0] if pref else None


def routing_key(req: dict) -> str | None:
    """The fingerprint a request hashes on, or None for round-robin.

    Uploaded payloads hash on their content digest (two uploads of the
    same ``.slx`` land on the same shard); zoo requests hash on the
    model name.  Ops with no model (``sleep``) spread round-robin.
    """
    payload = req.get("model_payload")
    if payload:
        return hashlib.sha256(str(payload).encode()).hexdigest()
    model = req.get("model")
    if model:
        return f"model:{model}"
    return None


async def _close_conn(conn) -> None:
    if conn is None:
        return
    _, writer = conn
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass


class ShardLink:
    """One shard's address plus a small pool of NDJSON connections.

    Lives on the router's event loop.  ``request`` checks a connection
    out, writes one line, reads one line and checks it back in; a stale
    pooled connection (shard restarted between requests) gets exactly
    one transparent retry on a fresh connection.
    """

    def __init__(self, name: str, host: str, port: int, max_idle: int = 4):
        self.name = name
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self.down = False
        self._idle: list = []

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def _open(self):
        try:
            return await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES)
        except OSError as exc:
            raise ShardUnreachable(
                f"cannot connect to shard {self.name} at {self.address}: "
                f"{exc}") from exc

    async def _exchange(self, conn, line: bytes, timeout: float) -> dict:
        reader, writer = conn
        writer.write(line)
        await writer.drain()
        reply = await asyncio.wait_for(reader.readline(), timeout)
        if not reply:
            raise ConnectionError("shard closed the connection")
        return json.loads(reply)

    async def request(self, req: dict, timeout: float) -> dict:
        """One request/response round-trip; raises
        :class:`ShardUnreachable` when no reply can be obtained and
        :class:`asyncio.TimeoutError` when the shard is alive but slow.
        """
        line = encode(req)
        conn = self._idle.pop() if self._idle else None
        pooled = conn is not None
        if conn is None:
            conn = await self._open()
        try:
            resp = await self._exchange(conn, line, timeout)
        except asyncio.TimeoutError:
            await _close_conn(conn)
            raise
        except (ConnectionError, OSError, ValueError) as exc:
            await _close_conn(conn)
            if not pooled:
                raise ShardUnreachable(
                    f"shard {self.name}: {exc}") from exc
            # The pooled connection went stale (shard restarted under
            # us); every op is idempotent, so retry once on a fresh one.
            conn = await self._open()
            try:
                resp = await self._exchange(conn, line, timeout)
            except asyncio.TimeoutError:
                await _close_conn(conn)
                raise
            except (ConnectionError, OSError, ValueError) as exc2:
                await _close_conn(conn)
                raise ShardUnreachable(
                    f"shard {self.name}: {exc2}") from exc2
        if len(self._idle) < self.max_idle:
            self._idle.append(conn)
        else:
            await _close_conn(conn)
        return resp

    async def close(self) -> None:
        idle, self._idle = self._idle, []
        for conn in idle:
            await _close_conn(conn)


class RouterServer(ReproServer):
    """A :class:`ReproServer` whose "pool" is a fleet of shard servers.

    Reuses the whole front-end (transports, tracing, per-request
    metrics, drain semantics) and replaces the execution path with
    ring-ordered forwarding.  Runs no workers of its own.
    """

    def __init__(self, config: ServeConfig, shards: dict):
        # The router executes nothing locally: no workers, no coalescing
        # (shards run their own batchers against their own slices).
        super().__init__(replace(config, workers=0, max_batch=1))
        self._links: dict[str, ShardLink] = {}
        for name, address in shards.items():
            host, port = self._parse_address(address)
            self._links[name] = ShardLink(name, host, port)
        self.ring = HashRing(self._links)
        self._probes: dict[str, asyncio.Future] = {}
        self._rr = 0
        self._forward_timeout = config.timeout_seconds + 30.0

    @staticmethod
    def _parse_address(address) -> tuple[str, int]:
        if isinstance(address, (tuple, list)):
            return str(address[0]), int(address[1])
        host, _, port = str(address).rpartition(":")
        return host or "127.0.0.1", int(port)

    def start_pool(self) -> None:  # the fleet is the pool
        self.pool = None

    async def stop(self) -> None:
        for task in self._probes.values():
            task.cancel()
        for link in self._links.values():
            await link.close()
        await super().stop()

    # -- membership (called by the supervisor, loop-threadsafe wrappers
    # -- live on RouterThread) ---------------------------------------------

    def mark_down(self, name: str) -> None:
        """Take a shard out of rotation (drain/kill); probed until back."""
        link = self._links.get(name)
        if link is None or link.down:
            return
        link.down = True
        self.metrics.record_router("shard_down", name)
        self._ensure_probe(name, link)

    def replace_shard(self, name: str, host: str, port: int) -> None:
        """Swap in a respawned shard's fresh address and restore it."""
        self._links[name] = ShardLink(name, host, port)
        self.ring.add(name)
        self.metrics.record_router("shard_replaced", name)

    def _ensure_probe(self, name: str, link: ShardLink) -> None:
        task = self._probes.get(name)
        if task is not None and not task.done():
            return
        self._probes[name] = asyncio.ensure_future(self._probe(name, link))

    async def _probe(self, name: str, link: ShardLink) -> None:
        # Staleness guard: stop when the link was replaced or revived.
        while (not self._stopping and link.down
               and self._links.get(name) is link):
            try:
                resp = await link.request({"id": 0, "op": "ping"},
                                          timeout=2.0)
                if resp.get("ok"):
                    link.down = False
                    self.metrics.record_router("shard_up", name)
                    return
            except (ShardUnreachable, asyncio.TimeoutError):
                pass
            await asyncio.sleep(PROBE_INTERVAL)

    # -- dispatch ----------------------------------------------------------

    async def _route(self, op: str, req: dict) -> tuple[dict, dict]:
        if self._stopping:
            raise ServeError("shutting_down", "router is draining")
        loop = asyncio.get_running_loop()
        if op == "ping":
            return {"pong": True, "role": "router",
                    "protocol_version": PROTOCOL_VERSION,
                    "shards": {name: {"address": link.address,
                                      "up": not link.down}
                               for name, link in self._links.items()}}, {}
        if op == "metrics":
            return await self._merged_metrics(req), {}
        if op == "shutdown":
            if not self.config.allow_shutdown:
                raise ServeError("bad_request",
                                 "shutdown op is disabled on this server")
            loop.call_soon(lambda: asyncio.ensure_future(self.stop()))
            return {"stopping": True}, {}
        return await self._forward(op, req)

    def _candidates(self, key: str | None) -> list[str]:
        if key is not None:
            return self.ring.preference(key)
        # No fingerprint to stick to: spread round-robin over the roster.
        names = sorted(self._links)
        if not names:
            return []
        self._rr = (self._rr + 1) % len(names)
        return names[self._rr:] + names[:self._rr]

    async def _forward(self, op: str, req: dict) -> tuple[dict, dict]:
        key = routing_key(req)
        route = tracing.span("router.route", op=op,
                             key=(key or "round-robin")[:24])
        with route:
            # The shard runs its own trace; the router's _dispatch grafts
            # these local spans in front of the shard's forest.
            wire = {k: v for k, v in req.items() if k != "_trace"}
            last_error: str | None = None
            for cycle in range(RETRY_CYCLES):
                if cycle:
                    await asyncio.sleep(RETRY_BACKOFF * cycle)
                candidates = self._candidates(key)
                # First the live shards in preference order, then — if
                # every one of them failed — the marked-down ones too
                # (they may be back before the probe notices).
                ordered = ([n for n in candidates
                            if not self._links[n].down]
                           + [n for n in candidates
                              if self._links[n].down])
                for name in ordered:
                    link = self._links.get(name)
                    if link is None:
                        continue
                    try:
                        with tracing.span("shard.forward", shard=name,
                                          attempt=cycle):
                            resp = await link.request(
                                wire, self._forward_timeout)
                    except asyncio.TimeoutError:
                        # The shard is alive but slow — its own deadline
                        # machinery answers first in practice; do not
                        # retry a possibly long-running compile.
                        self.metrics.record_router("forward_timeout", name)
                        route.set(outcome="timeout", shard=name)
                        raise ServeError(
                            "timeout",
                            f"shard {name} did not answer in time")
                    except ShardUnreachable as exc:
                        last_error = str(exc)
                        self.metrics.record_router("forward_failed", name)
                        self.mark_down(name)
                        continue
                    if resp.get("ok"):
                        self.metrics.record_router("forwarded", name)
                        route.set(shard=name)
                        result = resp.get("result") or {}
                        meta = dict(resp.get("meta") or {})
                        meta.setdefault("shard", name)
                        return result, meta
                    error = resp.get("error") or {}
                    etype = str(error.get("type", "internal"))
                    if etype in ("busy", "shutting_down"):
                        # Load shed / drain: both are transient and both
                        # are safe to retry on the next shard in the
                        # preference order (every op is idempotent).
                        if etype == "shutting_down":
                            self.mark_down(name)
                        self.metrics.record_router("shard_refused", name)
                        last_error = f"shard {name}: {etype}"
                        continue
                    # A real typed error (unknown_model, timeout, ...)
                    # would reproduce identically on any shard.
                    route.set(shard=name, error=etype)
                    raise ServeError(
                        etype, str(error.get("message", "shard error")))
            self.metrics.record_router("no_shard")
            route.set(outcome="no_shard")
            raise ServeError("busy",
                             "no shard available"
                             + (f" (last error: {last_error})"
                                if last_error else ""))

    def _record_cache_meta(self, meta: dict) -> None:
        """No-op: the owning shard already fed its own registry; counting
        the forwarded meta again would double every cache/fusion/adaptive
        event in the merged fleet view."""

    # -- merged metrics ----------------------------------------------------

    async def _merged_metrics(self, req: dict) -> dict:
        merged = merge_snapshots(await self._gather_snapshots())
        result = {"snapshot": merged}
        if req.get("render", True):
            result["text"] = render_snapshot(merged)
        return result

    async def _gather_snapshots(self) -> list[dict]:
        async def one(link: ShardLink):
            if link.down:
                return None
            try:
                resp = await link.request(
                    {"id": 0, "op": "metrics", "render": False},
                    timeout=10.0)
            except (ShardUnreachable, asyncio.TimeoutError):
                return None
            if resp.get("ok"):
                snap = (resp.get("result") or {}).get("snapshot")
                return snap if isinstance(snap, dict) else None
            return None

        shard_snaps = await asyncio.gather(
            *(one(link) for link in list(self._links.values())))
        return ([self.metrics.snapshot()]
                + [s for s in shard_snaps if s is not None])

    async def _metrics_text(self) -> str:
        return (await self._merged_metrics({"render": True}))["text"]


class RouterThread(ServerThread):
    """Run a :class:`RouterServer` on a background thread.

    Adds loop-threadsafe membership calls for the cluster supervisor,
    which lives on a plain thread.
    """

    def __init__(self, config: ServeConfig, shards: dict):
        super().__init__(config)
        self.shards = dict(shards)

    def start(self, timeout: float = 30.0) -> int:
        self.server = RouterServer(self.config, self.shards)
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-router")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("router failed to start within timeout")
        assert self.server._server is not None
        return self.server.port

    def _call(self, fn) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(fn)

    def mark_down(self, name: str) -> None:
        server = self.server
        if isinstance(server, RouterServer):
            self._call(lambda: server.mark_down(name))

    def replace_shard(self, name: str, host: str, port: int) -> None:
        server = self.server
        if isinstance(server, RouterServer):
            self._call(lambda: server.replace_shard(name, host, port))
