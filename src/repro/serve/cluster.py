"""Cluster supervisor: shard processes + shared store + router, one knob.

``frodo serve --cluster N`` assembles the whole fleet in one process
tree:

* a :class:`~repro.serve.store.StoreServer` thread publishing the
  shared content-addressed artifact store (compiled artifacts, native
  ``.so`` bundles, per-fingerprint heat records);
* N single-purpose **shard** subprocesses, each a plain
  ``frodo serve`` with its own overlay cache wired to the store
  (``--shard-id sK --store host:port``), announcing its ephemeral port
  on stdout;
* a :class:`~repro.serve.router.RouterThread` front door that
  consistent-hashes requests over the shards.

The supervisor's **monitor thread** is the self-healing part: a shard
process that dies unexpectedly is respawned with the *same shard name*
(ring membership never churns) at a fresh port, and the router's link
is swapped via ``replace_shard``.  While the replacement boots, the
router's ring-order retry keeps every request answered by the
survivors — the acceptance bar is *zero failed requests* through a
SIGKILL.  ``drain`` is the graceful variant: the shard is taken out of
rotation first, asked to finish in-flight work via the ``shutdown``
op, then respawned.

Because shard caches read through the shared store, a respawned shard
(or a survivor inheriting a killed shard's slice) re-materializes
artifacts and ``.so``s without recompiling, and — with the adaptive
tier on — re-seeds promotion heat from the persisted records.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.serve.router import RouterThread
from repro.serve.server import ServeConfig
from repro.serve.store import StoreServer

_ANNOUNCE_RE = re.compile(r"listening on ([\w.\-]+):(\d+)")

#: Monitor poll interval (seconds).
MONITOR_INTERVAL = 0.2

#: How long a shard gets to announce its port before spawn fails.
SPAWN_TIMEOUT = 60.0


@dataclass
class ClusterConfig:
    """One cluster = a router ServeConfig template + fleet shape."""

    #: Number of shard processes.
    shards: int = 2
    #: Template applied to every shard (host/port are overridden: shards
    #: bind ephemeral loopback ports) and to the router front door
    #: (which binds ``template.host:template.port``).
    template: ServeConfig = field(default_factory=ServeConfig)
    #: Worker processes per shard.  One is the sharded sweet spot — the
    #: fleet's parallelism lives across shards, not inside them.
    workers_per_shard: int = 1
    #: Root directory: the shared store lives in ``<root>/store``, each
    #: shard's overlay cache in ``<root>/shard-<name>``.
    root: str = ".frodo-cluster"
    #: Respawn shards that die unexpectedly.
    respawn: bool = True


class _Shard:
    """Bookkeeping for one shard subprocess."""

    def __init__(self, name: str):
        self.name = name
        self.proc: subprocess.Popen | None = None
        self.host = "127.0.0.1"
        self.port = 0
        #: Set while the supervisor itself stops/drains the process, so
        #: the monitor does not fight the intended exit with a respawn.
        self.expected_exit = False
        self.spawn_count = 0


class ClusterSupervisor:
    """Own the store thread, the shard processes and the router."""

    def __init__(self, config: ClusterConfig):
        if config.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.config = config
        self.store: StoreServer | None = None
        self.router: RouterThread | None = None
        self._shards = [_Shard(f"s{i}") for i in range(config.shards)]
        self._lock = threading.Lock()
        self._monitor: threading.Thread | None = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Boot store → shards → router; returns the router port."""
        root = Path(self.config.root)
        root.mkdir(parents=True, exist_ok=True)
        self.store = StoreServer(root / "store")
        self.store.start()
        try:
            for shard in self._shards:
                self._spawn(shard)
            router_config = replace(
                self.config.template,
                workers=0, max_batch=1, cache_dir=None, store=None,
                shard=None, adaptive=False)
            self.router = RouterThread(
                router_config,
                {s.name: (s.host, s.port) for s in self._shards})
            port = self.router.start()
        except Exception:
            self.stop()
            raise
        if self.config.respawn:
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True,
                name="repro-cluster-monitor")
            self._monitor.start()
        return port

    @property
    def port(self) -> int:
        assert self.router is not None, "cluster not started"
        assert self.router.server is not None
        return self.router.server.port

    def shard_ports(self) -> dict[str, int]:
        return {s.name: s.port for s in self._shards}

    def stop(self) -> None:
        self._stopping = True
        for shard in self._shards:
            shard.expected_exit = True
        if self._monitor is not None:
            # Long enough to cover a respawn that was in flight when the
            # flag flipped — _spawn kills its own child once it notices
            # _stopping, but the monitor must get that far first.
            self._monitor.join(timeout=15.0)
            self._monitor = None
        if self.router is not None:
            self.router.stop()
            self.router = None
        for shard in self._shards:
            self._terminate(shard)
        if self.store is not None:
            self.store.stop()
            self.store = None
        # Final sweep: a racing respawn may have re-assigned shard.proc
        # after the first pass terminated the old process.
        for shard in self._shards:
            self._terminate(shard, timeout=5.0)

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- shard process management ------------------------------------------

    def _shard_command(self, shard: _Shard) -> list[str]:
        t = self.config.template
        assert self.store is not None
        cache_dir = str(Path(self.config.root) / f"shard-{shard.name}")
        cmd = [sys.executable, "-m", "repro.cli", "serve",
               "--host", "127.0.0.1", "--port", "0",
               "--workers", str(self.config.workers_per_shard),
               "--cache-dir", cache_dir,
               "--shard-id", shard.name,
               "--store", self.store.address,
               "--request-timeout", str(t.timeout_seconds),
               "--max-pending", str(t.max_pending),
               "--max-batch", str(t.max_batch),
               "--max-batch-wait-ms", str(t.max_batch_wait_ms)]
        if t.allow_debug:
            cmd.append("--debug-ops")
        if t.adaptive:
            cmd.append("--adaptive")
            if t.promote_threshold_ms is not None:
                cmd += ["--promote-threshold-ms",
                        str(t.promote_threshold_ms)]
            cmd += ["--promote-min-runs", str(t.promote_min_runs),
                    "--promote-compiles", str(t.promote_compiles)]
        if t.vm_cache_max is not None:
            cmd += ["--vm-cache-max", str(t.vm_cache_max)]
        return cmd

    def _spawn(self, shard: _Shard) -> None:
        if self._stopping:
            raise RuntimeError(f"shard {shard.name}: cluster is stopping")
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        # Each shard leads its own process group: its forked pool
        # workers share the group, so terminating the group reaps them
        # even when the shard main dies to SIGKILL (chaos tests) and
        # never runs its own pool teardown.
        proc = subprocess.Popen(
            self._shard_command(shard), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True, env=env,
            start_new_session=True)
        deadline = time.monotonic() + SPAWN_TIMEOUT
        host = port = None
        assert proc.stdout is not None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = _ANNOUNCE_RE.search(line)
            if match:
                host, port = match.group(1), int(match.group(2))
                break
        if port is None or self._stopping:
            # No announce, or stop() raced this respawn: the fresh child
            # is ours to reap — nothing else holds a handle to it.
            proc.kill()
            proc.wait(timeout=10)
            if self._stopping:
                raise RuntimeError(
                    f"shard {shard.name}: cluster is stopping")
            raise RuntimeError(
                f"shard {shard.name} did not announce a port within "
                f"{SPAWN_TIMEOUT:g}s")
        shard.proc = proc
        shard.host = host
        shard.port = port
        shard.expected_exit = False
        shard.spawn_count += 1
        # Keep draining stdout so the child never blocks on a full pipe.
        threading.Thread(target=self._drain_stdout, args=(proc,),
                         daemon=True,
                         name=f"repro-shard-{shard.name}-out").start()

    @staticmethod
    def _drain_stdout(proc: subprocess.Popen) -> None:
        try:
            assert proc.stdout is not None
            for _ in proc.stdout:
                pass
        except (OSError, ValueError):
            pass

    @staticmethod
    def _signal_group(proc: subprocess.Popen, sig: int) -> None:
        """Signal a shard's whole process group (main + forked workers)."""
        try:
            os.killpg(proc.pid, sig)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                proc.send_signal(sig)
            except (ProcessLookupError, OSError):
                pass

    def _terminate(self, shard: _Shard, timeout: float = 10.0) -> None:
        proc = shard.proc
        if proc is None:
            return
        # Signal the group even if the main process already exited: its
        # pool workers outlive a SIGKILLed or crashed main.
        self._signal_group(proc, signal.SIGTERM)
        if proc.poll() is None:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                pass
        self._signal_group(proc, signal.SIGKILL)
        if proc.poll() is None:
            proc.wait(timeout=timeout)

    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(MONITOR_INTERVAL)
            for shard in self._shards:
                proc = shard.proc
                if (proc is None or proc.poll() is None
                        or shard.expected_exit or self._stopping):
                    continue
                with self._lock:
                    if shard.expected_exit or self._stopping:
                        continue
                    self._respawn(shard)

    def _respawn(self, shard: _Shard) -> None:
        router = self.router
        if router is not None:
            router.mark_down(shard.name)
        try:
            self._spawn(shard)
        except RuntimeError:
            return  # monitor retries on the next tick
        if router is not None:
            router.replace_shard(shard.name, shard.host, shard.port)

    # -- fault injection / maintenance -------------------------------------

    def _find(self, name: str) -> _Shard:
        for shard in self._shards:
            if shard.name == name:
                return shard
        raise KeyError(f"no shard named {name!r}")

    def kill_shard(self, name: str) -> None:
        """SIGKILL a shard mid-flight (tests, chaos).  The monitor — not
        this call — respawns it; until then its slice re-hashes to the
        survivors via the router's ring-order retry."""
        shard = self._find(name)
        if shard.proc is not None and shard.proc.poll() is None:
            # Whole group: a respawn replaces ``shard.proc``, so the dead
            # main's forked workers would otherwise never be reaped.
            self._signal_group(shard.proc, signal.SIGKILL)

    def drain_shard(self, name: str, respawn: bool = True) -> None:
        """Graceful rolling restart of one shard.

        Route-out first (``mark_down``), then the protocol ``shutdown``
        op so in-flight work finishes, then wait and respawn.  With the
        router's retry this is invisible to clients.
        """
        shard = self._find(name)
        with self._lock:
            shard.expected_exit = True
        if self.router is not None:
            self.router.mark_down(name)
        proc = shard.proc
        if proc is not None and proc.poll() is None:
            try:
                from repro.serve.client import ServeClient
                with ServeClient(shard.host, shard.port,
                                 timeout=10.0) as client:
                    client.shutdown()
            except Exception:  # noqa: BLE001 — fall back to terminate
                pass
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                pass
            # Graceful or not, reap the whole group before moving on —
            # a stuck worker must not survive the drain.
            self._terminate(shard)
        if respawn and not self._stopping:
            with self._lock:
                self._respawn(shard)

    def wait_shard_respawn(self, name: str, spawn_count: int,
                           timeout: float = 60.0) -> bool:
        """Block until ``name`` has been respawned past ``spawn_count``."""
        shard = self._find(name)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if (shard.spawn_count > spawn_count and shard.proc is not None
                    and shard.proc.poll() is None):
                return True
            time.sleep(0.05)
        return False
