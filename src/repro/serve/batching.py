"""Dynamic request coalescing for the serve front-end.

PR 3 made the per-step kernel cheap; what remains on the hot path is
per-request overhead — executor hop, worker IPC, VM lookup, a
single-instance ``run()``.  This module amortizes that the way
continuous-batching inference servers do: concurrent ``run`` requests
that share ``(model, generator, backend, steps)`` are held for at most
``max_wait_ms`` (or until ``max_batch`` accumulate), merged into one
``run_batch`` request executed by a single worker call, and the batched
result is fanned back out as per-request ``run``-shaped responses.

Invariants:

* a request that cannot be coalesced — unknown fields, ``coalesce``
  set false, or a non-coalescible op — is forwarded to the pool
  untouched, byte-identical to the uncoalesced path;
* a bucket that closes with one member forwards the **original** request
  (again byte-identical), so coalescing can only ever change grouping,
  never single-request semantics;
* per-instance failures (bad inputs for one request) fail only that
  request; whole-batch failures propagate the same typed error to every
  waiter;
* all queue state is touched from the event-loop thread only — no locks.

Per-request responses derived from a batch report the *amortized* view:
``execute_seconds`` and ``counts`` are the batch totals divided by the
number of executed instances.  The division is exact (and
``counts_exact`` stays true) whenever per-instance counts are
input-independent, which holds for every zoo model; otherwise
``counts_exact`` is false for the fanned-out responses.  Clients that
need the precise aggregate can send ``run_batch`` themselves or opt out
with ``"coalesce": false``.
"""

from __future__ import annotations

import asyncio
import hashlib
import time

from repro.obs import tracing
from repro.serve.protocol import ServeError

#: ``run`` fields the coalescer understands.  A request carrying anything
#: else is forwarded uncoalesced — unknown fields might affect execution,
#: and correctness beats batching.  ``trace`` and ``_trace`` are
#: observability-only (they never change what executes), so traced
#: requests stay coalescible — without them here, every request would
#: fall off the batching fast path the moment the server started
#: injecting trace carriers.
_COALESCIBLE_FIELDS = frozenset({
    "id", "op", "coalesce", "model", "model_payload", "model_format",
    "generator", "backend", "steps", "seed", "inputs", "include_outputs",
    "trace", "_trace",
})

#: Per-instance fields copied into the synthesized ``run_batch`` request.
_INSTANCE_FIELDS = ("seed", "inputs", "include_outputs")

#: Shared result fields copied from the batch result into each fanned-out
#: ``run``-shaped response.
_SHARED_RESULT_FIELDS = ("model", "model_fingerprint", "generator",
                         "backend", "steps")


def _batch_key(req: dict) -> tuple:
    """Requests coalesce iff they agree on everything outside
    :data:`_INSTANCE_FIELDS`."""
    model = req.get("model")
    if model is None:
        payload = str(req.get("model_payload", ""))
        model = ("payload",
                 hashlib.sha256(payload.encode()).hexdigest(),
                 req.get("model_format", "slx"))
    return (model, req.get("generator", "frodo"), req.get("backend", "auto"),
            req.get("steps", 1))


class _Bucket:
    __slots__ = ("items", "timer")

    def __init__(self):
        # (future, request, enqueue loop-time, enqueue wall-time) tuples —
        # loop time feeds the delay metrics, wall time anchors the
        # synthesized queue-wait spans on the shared trace timeline.
        self.items: list[tuple[asyncio.Future, dict, float, float]] = []
        self.timer: asyncio.TimerHandle | None = None


class BatchQueue:
    """Coalesce compatible ``run`` requests into ``run_batch`` calls.

    ``submit()`` is the only entry point; it resolves to the same
    ``(result, meta)`` pair ``pool.execute`` would return, or raises
    :class:`ServeError`.  Owned by :class:`~repro.serve.server.ReproServer`
    and driven entirely from its event loop.
    """

    def __init__(self, pool_execute, metrics, max_batch: int,
                 max_wait_ms: float):
        self._execute = pool_execute  # blocking (req) -> (result, meta)
        self._metrics = metrics
        self.max_batch = max(int(max_batch), 1)
        self.max_wait_ms = max(float(max_wait_ms), 0.0)
        self._buckets: dict[tuple, _Bucket] = {}

    # -- submission --------------------------------------------------------

    async def submit(self, req: dict) -> tuple[dict, dict]:
        loop = asyncio.get_running_loop()
        if (self.max_batch <= 1 or req.get("coalesce", True) is not True
                or not set(req) <= _COALESCIBLE_FIELDS):
            return await loop.run_in_executor(None, self._execute, req)
        key = _batch_key(req)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        future: asyncio.Future = loop.create_future()
        bucket.items.append((future, req, loop.time(), time.time()))
        if len(bucket.items) >= self.max_batch:
            self._close(key, bucket)
        elif bucket.timer is None:
            bucket.timer = loop.call_later(
                self.max_wait_ms / 1000.0, self._close, key, bucket)
        return await future

    def _close(self, key: tuple, bucket: _Bucket) -> None:
        """Detach a bucket from the queue and execute it."""
        if self._buckets.get(key) is bucket:
            del self._buckets[key]
        if bucket.timer is not None:
            bucket.timer.cancel()
            bucket.timer = None
        if bucket.items:
            asyncio.ensure_future(self._run_bucket(bucket.items))

    # -- execution and fan-out ---------------------------------------------

    async def _run_bucket(self, items: list) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        delays = [now - t0 for _, _, t0, _ in items]
        if self._metrics is not None:
            self._metrics.record_batch(len(items), delays)
        if len(items) == 1:
            # Never rewrite a lone request — forward it verbatim.
            future, req, _, t0_unix = items[0]
            qspan = tracing.manual_span(
                req.get("_trace"), "queue.wait", t0_unix, delays[0],
                coalesced=False)
            try:
                result, meta = await loop.run_in_executor(
                    None, self._execute, req)
            except BaseException as exc:  # noqa: BLE001 — must reach waiter
                self._fail([future], exc)
                return
            if not future.cancelled():
                meta = dict(meta)
                if qspan is not None:
                    meta["spans"] = [qspan, *meta.get("spans", ())]
                future.set_result((result, meta))
            return

        first_req = items[0][1]
        batch_req = {
            "op": "run_batch",
            "steps": first_req.get("steps", 1),
            "instances": [
                {k: r[k] for k in _INSTANCE_FIELDS if k in r}
                for _, r, _, _ in items
            ],
        }
        for field in ("model", "model_payload", "model_format",
                      "generator", "backend"):
            if field in first_req:
                batch_req[field] = first_req[field]
        carrier_ctx = self._batch_carrier(items)
        if carrier_ctx is not None:
            batch_req["_trace"] = carrier_ctx
        try:
            result, meta = await loop.run_in_executor(
                None, self._execute, batch_req)
        except BaseException as exc:  # noqa: BLE001 — must reach waiters
            self._fail([f for f, _, _, _ in items], exc)
            return
        self._fan_out(items, delays, result, meta)

    @staticmethod
    def _batch_carrier(items: list) -> dict | None:
        """Trace carrier for the synthesized batch request: the first
        *recording* member's (so the shared pool/worker spans are
        collected exactly once), else any member's so the trace id still
        propagates for crash attribution."""
        carrier_ctx = None
        for _, r, _, _ in items:
            ctx = r.get("_trace")
            if isinstance(ctx, dict):
                if carrier_ctx is None:
                    carrier_ctx = ctx
                if ctx.get("record"):
                    carrier_ctx = ctx
                    break
        return dict(carrier_ctx) if carrier_ctx is not None else None

    @staticmethod
    def _fail(futures: list, exc: BaseException) -> None:
        for future in futures:
            if not future.cancelled():
                future.set_exception(exc)

    def _fan_out(self, items: list, delays: list, result: dict,
                 meta: dict) -> None:
        executed = max(int(result.get("executed", 0)), 1)
        agg = result.get("counts") or {}
        per_counts = {k: v // executed for k, v in agg.items()}
        evenly = all(v % executed == 0 for v in agg.values())
        shared = {k: result[k] for k in _SHARED_RESULT_FIELDS if k in result}
        shared["execute_seconds"] = round(
            result.get("execute_seconds", 0.0) / executed, 6)
        shared["counts"] = per_counts
        shared["counts_exact"] = bool(result.get("counts_exact")) and evenly
        shared["total_element_ops"] = \
            result.get("total_element_ops", 0) // executed
        shared["peak_buffer_bytes"] = \
            result.get("peak_buffer_bytes", 0) // executed
        entries = result.get("results") or []
        shared_spans = meta.get("spans") or []
        for rank, (future, req, _, t0_unix) in enumerate(items):
            if future.cancelled():
                continue
            entry = entries[rank] if rank < len(entries) else None
            if not isinstance(entry, dict):
                future.set_exception(ServeError(
                    "internal", f"batched result missing instance {rank}"))
                continue
            if not entry.get("ok"):
                future.set_exception(ServeError(
                    entry.get("error_type", "internal"),
                    entry.get("error", "batched instance failed")))
                continue
            inst_result = dict(shared)
            inst_result["output_sha256"] = entry.get("output_sha256")
            if "outputs" in entry:
                inst_result["outputs"] = entry["outputs"]
            inst_meta = {"coalesced": True,
                         "batched": result.get("executed", executed)}
            for k in ("worker_pid", "service_seconds", "adaptive"):
                if k in meta:
                    inst_meta[k] = meta[k]
            if rank == 0:
                # Cache events happened once for the whole batch; surface
                # them on one member so the registry counts them once.
                # Same for the adaptive tier's telemetry: promotion events
                # and the eviction total are whole-worker facts.
                for k in ("artifact_cache", "vm_cache", "adaptive_events",
                          "adaptive_states", "vm_cache_evictions"):
                    if k in meta:
                        inst_meta[k] = meta[k]
            ctx = req.get("_trace")
            spans = []
            qspan = tracing.manual_span(
                ctx, "queue.wait", t0_unix, delays[rank],
                coalesced=True, batch=len(items))
            if qspan is not None:
                spans.append(qspan)
            if isinstance(ctx, dict) and ctx.get("record") and shared_spans:
                # The shared pool/worker spans were collected on the
                # carrier member's trace; restamp them with this member's
                # id (the server re-parents any foreign parent ids onto
                # the request root via merge_spans).
                tid = ctx.get("trace_id")
                spans.extend(dict(s, trace_id=tid) for s in shared_spans)
            if spans:
                inst_meta["spans"] = spans
            future.set_result((inst_result, inst_meta))
