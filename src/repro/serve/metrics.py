"""Service observability: counters, latency histograms, cache hit rates.

A deliberately small, dependency-free metrics core in the spirit of the
Prometheus client: named counters with label sets, fixed-bucket latency
histograms, and a registry that can snapshot itself as JSON (served by
the ``metrics`` op) or render a human-readable text page (served by
``GET /metrics`` on the HTTP shim).

Everything is guarded by one registry lock — metric updates are a few
dict operations, far cheaper than the requests they annotate, so a single
lock is simpler and plenty fast at the request rates a Python service
front-end can sustain.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

#: Histogram bucket upper bounds in seconds (log-ish scale, +inf implied).
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Batch-occupancy buckets: instances per coalesced worker call (powers of
#: two up to the protocol's instance cap).
BATCH_OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonic counter with optional labels (one value per label set)."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def snapshot(self) -> list[dict]:
        return [{"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())]


class Histogram:
    """Fixed-bucket latency histogram with count/sum/min/max."""

    def __init__(self, name: str, help_text: str = "",
                 buckets: Iterable[float] = LATENCY_BUCKETS):
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(buckets)
        self._series: dict[tuple, dict] = {}

    def observe(self, seconds: float, **labels: str) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = {
                "counts": [0] * (len(self.buckets) + 1),
                "count": 0, "sum": 0.0,
                "min": float("inf"), "max": 0.0,
            }
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                series["counts"][i] += 1
                break
        else:
            series["counts"][-1] += 1
        series["count"] += 1
        series["sum"] += seconds
        series["min"] = min(series["min"], seconds)
        series["max"] = max(series["max"], seconds)

    def quantile(self, q: float, **labels: str) -> float | None:
        """Approximate quantile from bucket upper bounds (None if empty)."""
        series = self._series.get(_label_key(labels))
        if not series or not series["count"]:
            return None
        rank = q * series["count"]
        seen = 0
        for i, count in enumerate(series["counts"]):
            seen += count
            if seen >= rank and count:
                bound = (self.buckets[i] if i < len(self.buckets)
                         else series["max"])
                # The true value never exceeds the observed maximum, so a
                # bucket upper bound past it would only overstate tails.
                return min(bound, series["max"])
        return series["max"]

    def snapshot(self) -> list[dict]:
        out = []
        for key, series in sorted(self._series.items()):
            out.append({
                "labels": dict(key),
                "count": series["count"],
                "sum_seconds": round(series["sum"], 6),
                "min_seconds": round(series["min"], 6),
                "max_seconds": round(series["max"], 6),
                "mean_seconds": round(series["sum"] / series["count"], 6),
                "buckets": {
                    **{f"le_{bound:g}": series["counts"][i]
                       for i, bound in enumerate(self.buckets)},
                    "le_inf": series["counts"][-1],
                },
            })
        return out


class MetricsRegistry:
    """All metrics of one server instance, behind one lock.

    ``shard`` names the serving shard this registry belongs to (cluster
    mode); its snapshot carries the label so the router's merged view
    (:func:`merge_snapshots`) can still attribute per-shard detail.
    Plain single-process servers leave it unset and their snapshots are
    unchanged.
    """

    def __init__(self, shard: str | None = None):
        self._lock = threading.Lock()
        self.shard = shard
        #: Extra labels stamped on every counter row (cluster mode only;
        #: unset shards keep the exact label sets of a plain server).
        self._base_labels: dict[str, str] = (
            {"shard": shard} if shard else {})
        self.started_at = time.time()
        self.requests = Counter(
            "requests_total", "requests by op and outcome")
        self.latency = Histogram(
            "request_latency_seconds", "end-to-end service time by op")
        self.cache_events = Counter(
            "cache_events_total", "hits/misses by cache (vm, artifact)")
        self.pool_events = Counter(
            "pool_events_total",
            "worker lifecycle: spawned, crashed, retried, timed_out, shed")
        self.connections = Counter(
            "connections_total", "accepted connections by transport")
        self.batch_occupancy = Histogram(
            "batch_occupancy",
            "instances per coalesced worker call (1 = uncoalesced flush)",
            buckets=BATCH_OCCUPANCY_BUCKETS)
        self.batch_queue_delay = Histogram(
            "batch_queue_delay_seconds",
            "time a run request waited in the coalescing queue")
        self.phase_latency = Histogram(
            "phase_latency_seconds",
            "per-pipeline-stage wall time from traced requests "
            "(queue, pool.acquire, worker.handle, codegen, vm.run, ...)")
        self.fusion = Counter(
            "fusion_total",
            "loop-fusion work by freshly built VMs: nests_fused, "
            "buffers_contracted, buffers_windowed, bytes_saved, and the "
            "audit counters flag_mismatch_rejects, nested_depth_rejects, "
            "window_shape_rejects (cached VMs add nothing)")
        self.backend_promotions = Counter(
            "backend_promotions_total",
            "fingerprints promoted to native by the adaptive tier")
        self.backend_demotions = Counter(
            "backend_demotions_total",
            "fingerprints permanently demoted to vector "
            "(toolchain failure / compile error)")
        self.vm_evictions = Counter(
            "vm_cache_evictions_total",
            "warm VM cache LRU evictions, summed across workers")
        self.router_events = Counter(
            "router_events_total",
            "cluster routing: routed, forwarded, failover, unreachable, "
            "shard_down, shard_up (empty on non-router servers)")
        #: Per-worker cumulative eviction counts (workers report a
        #: monotonic total; the registry keeps deltas).
        self._vm_evictions_seen: dict[int, int] = {}
        #: Latest promotion-state distribution reported per worker pid —
        #: a gauge, not a counter: each worker's report replaces its slot.
        self._adaptive_states: dict[int, dict[str, int]] = {}
        self.in_flight = 0

    # -- recording ---------------------------------------------------------

    def record_request(self, op: str, outcome: str, seconds: float) -> None:
        with self._lock:
            self.requests.inc(op=op, outcome=outcome, **self._base_labels)
            self.latency.observe(seconds, op=op)

    def record_cache(self, cache: str, event: str, amount: int = 1) -> None:
        if amount:
            with self._lock:
                self.cache_events.inc(amount, cache=cache, event=event,
                                      **self._base_labels)

    def record_pool(self, event: str) -> None:
        with self._lock:
            self.pool_events.inc(event=event, **self._base_labels)

    def record_connection(self, transport: str) -> None:
        with self._lock:
            self.connections.inc(transport=transport, **self._base_labels)

    def record_router(self, event: str, shard: str = "") -> None:
        """One routing decision or shard-membership transition."""
        with self._lock:
            self.router_events.inc(event=event, shard=shard)

    def record_batch(self, occupancy: int,
                     delays_seconds: Iterable[float]) -> None:
        """One coalesced flush: its occupancy (instances in the worker
        call) and the queue delay of every member request."""
        with self._lock:
            self.batch_occupancy.observe(float(occupancy))
            for delay in delays_seconds:
                self.batch_queue_delay.observe(delay)

    def record_fusion(self, stats: dict) -> None:
        """Fold one VM's fusion stats (a ``FusionStats.as_dict()``) into
        the aggregate counters."""
        with self._lock:
            for key in ("nests_fused", "buffers_contracted",
                        "buffers_windowed", "bytes_saved",
                        "flag_mismatch_rejects", "nested_depth_rejects",
                        "window_shape_rejects"):
                amount = stats.get(key, 0)
                if isinstance(amount, int) and amount > 0:
                    self.fusion.inc(amount, stat=key)

    def record_adaptive_event(self, event: str) -> None:
        """One completed background promotion or demotion."""
        with self._lock:
            if event == "promoted":
                self.backend_promotions.inc()
            elif event == "demoted":
                self.backend_demotions.inc()

    def record_adaptive_states(self, worker_pid: int,
                               states: dict) -> None:
        """Replace one worker's promotion-state gauge slot."""
        if not isinstance(states, dict):
            return
        with self._lock:
            self._adaptive_states[int(worker_pid)] = {
                str(k): int(v) for k, v in states.items()
                if isinstance(v, int)}

    def record_vm_evictions(self, worker_pid: int, cumulative: int) -> None:
        """Fold one worker's monotonic eviction total into the counter."""
        with self._lock:
            seen = self._vm_evictions_seen.get(int(worker_pid), 0)
            if cumulative > seen:
                self.vm_evictions.inc(cumulative - seen)
                self._vm_evictions_seen[int(worker_pid)] = cumulative

    def adaptive_state_gauge(self) -> dict[str, int]:
        """Fingerprint states summed across reporting workers."""
        with self._lock:
            gauge: dict[str, int] = {}
            for states in self._adaptive_states.values():
                for state, count in states.items():
                    gauge[state] = gauge.get(state, 0) + count
        return gauge

    def record_phase(self, phase: str, seconds: float) -> None:
        """One pipeline-stage observation from a traced request's span.

        Only traced requests feed these histograms (tracing is opt-in
        per request), so treat them as a sampled latency breakdown, not
        an exhaustive census — the ``requests_total`` counters remain
        the complete picture.
        """
        with self._lock:
            self.phase_latency.observe(max(seconds, 0.0), phase=phase)

    def adjust_in_flight(self, delta: int) -> None:
        with self._lock:
            self.in_flight += delta

    # -- reporting ---------------------------------------------------------

    def hit_rate(self, cache: str) -> float | None:
        with self._lock:
            hits = self.cache_events.value(cache=cache, event="hit")
            misses = self.cache_events.value(cache=cache, event="miss")
        total = hits + misses
        return (hits / total) if total else None

    def snapshot(self) -> dict:
        with self._lock:
            snap = {
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "in_flight": self.in_flight,
                "requests_total": self.requests.snapshot(),
                "request_latency_seconds": self.latency.snapshot(),
                "cache_events_total": self.cache_events.snapshot(),
                "pool_events_total": self.pool_events.snapshot(),
                "connections_total": self.connections.snapshot(),
                "batch_occupancy": self.batch_occupancy.snapshot(),
                "batch_queue_delay_seconds":
                    self.batch_queue_delay.snapshot(),
                "phase_latency_seconds": self.phase_latency.snapshot(),
                "fusion_total": self.fusion.snapshot(),
                "router_events_total": self.router_events.snapshot(),
                "backend_promotions_total": self.backend_promotions.total(),
                "backend_demotions_total": self.backend_demotions.total(),
                "vm_cache_evictions_total": self.vm_evictions.total(),
            }
            if self.shard is not None:
                snap["shard"] = self.shard
        snap["adaptive_state"] = self.adaptive_state_gauge()
        for cache in ("vm", "artifact"):
            rate = self.hit_rate(cache)
            snap[f"{cache}_cache_hit_rate"] = (
                None if rate is None else round(rate, 4))
        return snap

    def render_text(self) -> str:
        """Aligned text page for ``GET /metrics`` and ``frodo submit``."""
        return render_snapshot(self.snapshot())


#: Counter families (rows of ``{labels, value}``) merged by label set.
COUNTER_FAMILIES = ("requests_total", "cache_events_total",
                    "pool_events_total", "connections_total",
                    "fusion_total", "router_events_total")

#: Histogram families (rows with count/sum/min/max/buckets).
HISTOGRAM_FAMILIES = ("request_latency_seconds", "batch_occupancy",
                      "batch_queue_delay_seconds", "phase_latency_seconds")

#: Scalar totals summed across shards.
SUMMED_SCALARS = ("in_flight", "backend_promotions_total",
                  "backend_demotions_total", "vm_cache_evictions_total")


def render_snapshot(snap: dict) -> str:
    """Text page for one snapshot dict (a registry's own or a merged one)."""
    lines = [
        f"uptime_seconds {snap['uptime_seconds']}",
        f"in_flight {snap['in_flight']}",
    ]
    for metric in COUNTER_FAMILIES:
        for row in snap.get(metric, ()):
            labels = ",".join(f'{k}="{v}"'
                              for k, v in row["labels"].items())
            lines.append(f"{metric}{{{labels}}} {row['value']:g}")
    for row in snap["request_latency_seconds"]:
        op = row["labels"].get("op", "")
        lines.append(
            f'request_latency_seconds{{op="{op}"}} '
            f"count={row['count']} mean={row['mean_seconds']}s "
            f"min={row['min_seconds']}s max={row['max_seconds']}s")
    for row in snap["batch_occupancy"]:
        lines.append(
            f"batch_occupancy count={row['count']} "
            f"mean={row['mean_seconds']} max={row['max_seconds']:g}")
    for row in snap["batch_queue_delay_seconds"]:
        lines.append(
            f"batch_queue_delay_seconds count={row['count']} "
            f"mean={row['mean_seconds']}s max={row['max_seconds']}s")
    for row in snap["phase_latency_seconds"]:
        phase = row["labels"].get("phase", "")
        lines.append(
            f'phase_latency_seconds{{phase="{phase}"}} '
            f"count={row['count']} mean={row['mean_seconds']}s "
            f"max={row['max_seconds']}s")
    for cache in ("vm", "artifact"):
        rate = snap[f"{cache}_cache_hit_rate"]
        lines.append(f"{cache}_cache_hit_rate "
                     f"{'n/a' if rate is None else rate}")
    for name in ("backend_promotions_total", "backend_demotions_total",
                 "vm_cache_evictions_total"):
        lines.append(f"{name} {snap[name]:g}")
    for state, count in sorted(snap["adaptive_state"].items()):
        lines.append(f'adaptive_state{{state="{state}"}} {count}')
    return "\n".join(lines) + "\n"


def _merge_counter_rows(snaps: list[dict], family: str) -> list[dict]:
    merged: dict[tuple, float] = {}
    for snap in snaps:
        for row in snap.get(family, ()):
            key = _label_key(row.get("labels", {}))
            merged[key] = merged.get(key, 0.0) + row.get("value", 0.0)
    return [{"labels": dict(key), "value": value}
            for key, value in sorted(merged.items())]


def _merge_histogram_rows(snaps: list[dict], family: str) -> list[dict]:
    merged: dict[tuple, dict] = {}
    for snap in snaps:
        for row in snap.get(family, ()):
            key = _label_key(row.get("labels", {}))
            acc = merged.get(key)
            if acc is None:
                acc = merged[key] = {
                    "count": 0, "sum": 0.0,
                    "min": float("inf"), "max": 0.0, "buckets": {}}
            acc["count"] += row.get("count", 0)
            acc["sum"] += row.get("sum_seconds", 0.0)
            acc["min"] = min(acc["min"], row.get("min_seconds", float("inf")))
            acc["max"] = max(acc["max"], row.get("max_seconds", 0.0))
            for bound, n in row.get("buckets", {}).items():
                acc["buckets"][bound] = acc["buckets"].get(bound, 0) + n
    out = []
    for key, acc in sorted(merged.items()):
        count = acc["count"]
        out.append({
            "labels": dict(key),
            "count": count,
            "sum_seconds": round(acc["sum"], 6),
            "min_seconds": round(acc["min"], 6) if count else 0.0,
            "max_seconds": round(acc["max"], 6),
            "mean_seconds": round(acc["sum"] / count, 6) if count else 0.0,
            "buckets": acc["buckets"],
        })
    return out


def merge_snapshots(snaps: list[dict]) -> dict:
    """Fleet-wide view: sum counters/histograms across shard snapshots.

    Used by the router's ``metrics`` op — counter families merge by
    label set, histograms merge count/sum/min/max and per-bucket counts
    (means recomputed), scalar totals sum, ``uptime_seconds`` takes the
    max, and cache hit rates are recomputed from the merged event
    counts.  Per-shard ``shard`` labels inside rows survive the merge.
    """
    snaps = [s for s in snaps if isinstance(s, dict)]
    if not snaps:
        return MetricsRegistry().snapshot()
    merged: dict = {
        "uptime_seconds": max(s.get("uptime_seconds", 0.0) for s in snaps),
        "shards_merged": len(snaps),
    }
    for name in SUMMED_SCALARS:
        merged[name] = sum(s.get(name, 0) for s in snaps)
    for family in COUNTER_FAMILIES:
        merged[family] = _merge_counter_rows(snaps, family)
    for family in HISTOGRAM_FAMILIES:
        merged[family] = _merge_histogram_rows(snaps, family)
    gauge: dict[str, int] = {}
    for snap in snaps:
        for state, count in (snap.get("adaptive_state") or {}).items():
            gauge[state] = gauge.get(state, 0) + count
    merged["adaptive_state"] = gauge
    events: dict[tuple[str, str], float] = {}
    for row in merged["cache_events_total"]:
        labels = row["labels"]
        key = (labels.get("cache", ""), labels.get("event", ""))
        events[key] = events.get(key, 0.0) + row["value"]
    for cache in ("vm", "artifact"):
        hits = events.get((cache, "hit"), 0.0)
        total = hits + events.get((cache, "miss"), 0.0)
        merged[f"{cache}_cache_hit_rate"] = (
            round(hits / total, 4) if total else None)
    return merged
