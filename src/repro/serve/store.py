"""Shared content-addressed artifact store for sharded serving.

The cache keys in :mod:`repro.serve.cache` are location-independent by
construction — ``sha256(model_fp : generator : backend : fuse)`` names
the same bytes on every box — so scaling the cache out is a transport
problem, not a keying problem.  This module supplies that transport:

* :class:`LocalStore` — flat content-addressed blob directory
  (``<root>/<kind>/<aa>/<key>.blob``), atomic writes, three blob kinds:
  ``artifact`` (pickled compile results), ``native`` (packed ``.so``
  bundles: shared object + C source + build metadata), and ``heat``
  (JSON per-fingerprint adaptive-tier heat snapshots);
* :class:`StoreServer` / :class:`RemoteStore` — a tiny NDJSON-over-TCP
  get/put/has/stat protocol (blobs ride base64) so N shard processes
  share one store;
* :class:`SharedArtifactCache` — an :class:`~repro.serve.cache.ArtifactCache`
  with a **local overlay**: reads check the local directory first, fall
  through to the remote store (validating and re-materializing locally),
  and writes publish back, so the fleet compiles each distinct
  fingerprint once and every shard still serves hot keys from its own
  disk;
* :class:`HeatStore` — per-fingerprint heat persistence next to the
  artifacts, letting a shard that inherits a slice after a re-hash start
  from observed heat instead of cold (see :mod:`repro.serve.adaptive`).

A corrupted remote blob is **never served**: deserialization happens
before the overlay write, failures count as misses, and the caller
recompiles locally (its eventual ``put`` overwrites the bad remote
entry with good bytes).
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
import re
import socket
import socketserver
import tempfile
import threading
from pathlib import Path
from typing import Optional

from repro.serve.cache import ARTIFACT_VERSION, Artifact, ArtifactCache

#: Blob namespaces the store accepts.
STORE_KINDS = ("artifact", "native", "heat")

#: Keys are hex digests — anything else is rejected before it can touch
#: the filesystem (no path traversal by construction).
_KEY_RE = re.compile(r"^[0-9a-f]{8,128}$")

#: Bump when the packed native-bundle layout changes.
NATIVE_BUNDLE_VERSION = 1

#: One request or response line on the store protocol (native bundles
#: carry whole ``.so`` files as base64).
STORE_MAX_LINE = 64 * 1024 * 1024


class StoreError(Exception):
    """A store operation failed (network, protocol, or invalid input)."""


def _check(kind: str, key: str) -> None:
    if kind not in STORE_KINDS:
        raise StoreError(f"unknown blob kind {kind!r}; "
                         f"expected one of {STORE_KINDS}")
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise StoreError(f"invalid store key {key!r} (need lowercase hex)")


class LocalStore:
    """Content-addressed blob directory: ``<root>/<kind>/<aa>/<key>.blob``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, kind: str, key: str) -> Path:
        _check(kind, key)
        return self.root / kind / key[:2] / f"{key}.blob"

    def get(self, kind: str, key: str) -> Optional[bytes]:
        try:
            return self.path(kind, key).read_bytes()
        except OSError:
            return None

    def put(self, kind: str, key: str, blob: bytes) -> None:
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def has(self, kind: str, key: str) -> bool:
        return self.path(kind, key).exists()

    def stat(self) -> dict:
        out: dict = {}
        for kind in STORE_KINDS:
            count = size = 0
            for path in self.root.glob(f"{kind}/*/*.blob"):
                try:
                    size += path.stat().st_size
                    count += 1
                except OSError:
                    pass
            out[kind] = {"count": count, "bytes": size}
        return out


# -- wire protocol -------------------------------------------------------------


def _encode_msg(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


class _StoreHandler(socketserver.StreamRequestHandler):
    """One store connection: NDJSON request per line, response per line."""

    def handle(self) -> None:  # noqa: D102 — socketserver contract
        server: StoreServer = self.server  # type: ignore[assignment]
        while True:
            try:
                line = self.rfile.readline(STORE_MAX_LINE)
            except OSError:
                return
            if not line:
                return
            try:
                resp = server.serve_one(line)
            except Exception as exc:  # noqa: BLE001 — conn must survive
                resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                self.wfile.write(_encode_msg(resp))
            except OSError:
                return


class StoreServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front-end over a :class:`LocalStore`.

    One thread per connection; the store's atomic-rename writes make
    concurrent puts of the same key safe (last writer wins with
    identical bytes — keys are content addresses).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, root: str | Path, host: str = "127.0.0.1",
                 port: int = 0):
        self.store = LocalStore(root)
        self._counts_lock = threading.Lock()
        self.counts = {"get": 0, "get_hit": 0, "put": 0, "has": 0,
                       "stat": 0, "errors": 0}
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _StoreHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.server_address[0]}:{self.server_address[1]}"

    def _count(self, name: str) -> None:
        with self._counts_lock:
            self.counts[name] = self.counts.get(name, 0) + 1

    def serve_one(self, line: bytes) -> dict:
        try:
            req = json.loads(line)
        except ValueError as exc:
            self._count("errors")
            return {"ok": False, "error": f"bad json: {exc}"}
        if not isinstance(req, dict):
            self._count("errors")
            return {"ok": False, "error": "request must be an object"}
        op = req.get("op")
        if op == "stat":
            self._count("stat")
            return {"ok": True, "kinds": self.store.stat(),
                    "counts": dict(self.counts)}
        kind, key = req.get("kind", ""), req.get("key", "")
        try:
            _check(kind, key)
        except StoreError as exc:
            self._count("errors")
            return {"ok": False, "error": str(exc)}
        if op == "get":
            self._count("get")
            blob = self.store.get(kind, key)
            if blob is None:
                return {"ok": True, "found": False}
            self._count("get_hit")
            return {"ok": True, "found": True,
                    "blob": base64.b64encode(blob).decode()}
        if op == "put":
            self._count("put")
            try:
                blob = base64.b64decode(req.get("blob", ""), validate=True)
            except (ValueError, TypeError) as exc:
                self._count("errors")
                return {"ok": False, "error": f"bad blob encoding: {exc}"}
            self.store.put(kind, key, blob)
            return {"ok": True, "stored": len(blob)}
        if op == "has":
            self._count("has")
            return {"ok": True, "found": self.store.has(kind, key)}
        self._count("errors")
        return {"ok": False, "error": f"unknown store op {op!r}"}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "StoreServer":
        """Serve on a background thread; returns self (port is bound)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True, name="repro-store")
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.server_close()


class RemoteStore:
    """Blocking client for one :class:`StoreServer` (thread-safe).

    Keeps a small pool of persistent connections; a connection that
    errors is discarded and the request retried once on a fresh one, so
    a store restart is invisible to shards.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 max_conns: int = 4):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_conns = max_conns
        self._lock = threading.Lock()
        self._free: list[tuple[socket.socket, io.BufferedReader]] = []

    @classmethod
    def parse(cls, address: str, timeout: float = 10.0) -> "RemoteStore":
        """Build from a ``host:port`` string (the ``--store`` flag)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise StoreError(f"store address must be host:port, "
                             f"got {address!r}")
        return cls(host, int(port), timeout=timeout)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _acquire(self) -> tuple[socket.socket, io.BufferedReader]:
        with self._lock:
            if self._free:
                return self._free.pop()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        return sock, sock.makefile("rb")

    def _release(self, conn: tuple[socket.socket, io.BufferedReader]) -> None:
        with self._lock:
            if len(self._free) < self.max_conns:
                self._free.append(conn)
                return
        self._discard(conn)

    @staticmethod
    def _discard(conn: tuple[socket.socket, io.BufferedReader]) -> None:
        sock, reader = conn
        for closer in (reader.close, sock.close):
            try:
                closer()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            conns, self._free = self._free, []
        for conn in conns:
            self._discard(conn)

    def _request(self, req: dict) -> dict:
        last: Exception | None = None
        for _ in range(2):  # one retry on a stale pooled connection
            try:
                conn = self._acquire()
            except OSError as exc:
                last = exc
                continue
            sock, reader = conn
            try:
                sock.sendall(_encode_msg(req))
                line = reader.readline(STORE_MAX_LINE)
                if not line:
                    raise StoreError("store closed the connection")
                resp = json.loads(line)
            except (OSError, ValueError, StoreError) as exc:
                self._discard(conn)
                last = exc
                continue
            self._release(conn)
            if not isinstance(resp, dict) or not resp.get("ok"):
                error = resp.get("error", "?") if isinstance(resp, dict) \
                    else "malformed response"
                raise StoreError(f"store error: {error}")
            return resp
        raise StoreError(f"store at {self.address} unreachable: {last}")

    # -- operations --------------------------------------------------------

    def get(self, kind: str, key: str) -> Optional[bytes]:
        _check(kind, key)
        resp = self._request({"op": "get", "kind": kind, "key": key})
        if not resp.get("found"):
            return None
        try:
            return base64.b64decode(resp.get("blob", ""), validate=True)
        except (ValueError, TypeError) as exc:
            raise StoreError(f"store returned undecodable blob: {exc}")

    def put(self, kind: str, key: str, blob: bytes) -> None:
        _check(kind, key)
        self._request({"op": "put", "kind": kind, "key": key,
                       "blob": base64.b64encode(blob).decode()})

    def has(self, kind: str, key: str) -> bool:
        _check(kind, key)
        return bool(self._request({"op": "has", "kind": kind,
                                   "key": key}).get("found"))

    def stat(self) -> dict:
        return self._request({"op": "stat"})


# -- artifact / native packing -------------------------------------------------


def pack_artifact(artifact: Artifact) -> bytes:
    """Serialize an artifact exactly as the on-disk cache stores it."""
    buf = io.BytesIO()
    pickle.dump((ARTIFACT_VERSION, artifact), buf,
                protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getvalue()


def unpack_artifact(blob: bytes) -> Optional[Artifact]:
    """Deserialize and validate; None for corrupt or version-skewed bytes."""
    try:
        version, artifact = pickle.loads(blob)
        if version != ARTIFACT_VERSION or not isinstance(artifact, Artifact):
            return None
    except Exception:  # noqa: BLE001 — any bad bytes are a miss
        return None
    return artifact


def pack_native(so_bytes: bytes, c_source: str, info_json: str) -> bytes:
    buf = io.BytesIO()
    pickle.dump((NATIVE_BUNDLE_VERSION,
                 {"so": so_bytes, "c": c_source, "info": info_json}),
                buf, protocol=pickle.HIGHEST_PROTOCOL)
    return buf.getvalue()


def unpack_native(blob: bytes) -> Optional[dict]:
    try:
        version, bundle = pickle.loads(blob)
        if version != NATIVE_BUNDLE_VERSION or not isinstance(bundle, dict) \
                or not isinstance(bundle.get("so"), bytes):
            return None
    except Exception:  # noqa: BLE001
        return None
    return bundle


# -- heat persistence ----------------------------------------------------------


def heat_key(program_fp: str, fuse: bool) -> str:
    """Content address of one fingerprint's persisted heat record."""
    return hashlib.sha256(
        f"heat:{program_fp}:fuse={int(bool(fuse))}".encode()).hexdigest()


class HeatStore:
    """Per-fingerprint heat records over any get/put backend.

    Backed by either a :class:`RemoteStore` (cluster mode: heat lives
    next to the shared artifacts) or a :class:`LocalStore` (single
    server: ``<cache_dir>/heat/``).  All failures are soft — heat is an
    optimization hint, never worth failing a request over.
    """

    def __init__(self, backend):
        self.backend = backend
        self.errors = 0

    def load(self, program_fp: str, fuse: bool) -> Optional[dict]:
        try:
            blob = self.backend.get("heat", heat_key(program_fp, fuse))
            if blob is None:
                return None
            payload = json.loads(blob)
            return payload if isinstance(payload, dict) else None
        except (StoreError, ValueError, OSError):
            self.errors += 1
            return None

    def save(self, program_fp: str, fuse: bool, payload: dict) -> bool:
        try:
            self.backend.put("heat", heat_key(program_fp, fuse),
                             json.dumps(payload).encode())
            return True
        except (StoreError, TypeError, ValueError, OSError):
            self.errors += 1
            return False


# -- the shard-side cache ------------------------------------------------------


class SharedArtifactCache(ArtifactCache):
    """Artifact cache with a remote read-through/publish tier.

    ``get``: local overlay first (hot path, no network), then the remote
    store — a valid remote blob is re-materialized into the overlay (so
    the *next* request is local) and reported as a hit; a corrupt remote
    blob is counted and treated as a miss, never served.

    ``put``: writes the overlay, then best-effort publishes to the
    remote store — a store outage degrades the fleet to per-shard
    caching instead of failing requests.

    ``backend="native"`` ``.so`` bundles ride the same store (see
    :meth:`fetch_native` / :meth:`publish_native`): the first shard to
    compile a program publishes the shared object, and every other
    shard's "compile" becomes a download + dlopen.
    """

    def __init__(self, root: str | Path, remote: RemoteStore):
        super().__init__(root)
        self.remote = remote
        with self._lock:
            self._stats.update(remote_hits=0, remote_errors=0,
                               remote_publishes=0, native_fetched=0,
                               native_published=0)
        #: Memoized native-store sync decisions, keyed by the caller's
        #: cheap per-artifact key (one fuse+lower+fingerprint chain and
        #: at most one has/put round-trip per artifact per process).
        self._native_fetch_seen: dict[str, str] = {}
        self._native_publish_seen: set[str] = set()
        self._native_keys: dict[str, str] = {}
        self._native_lock = threading.Lock()

    def heat_store(self) -> HeatStore:
        return HeatStore(self.remote)

    # -- artifacts ---------------------------------------------------------

    def get(self, key: str) -> Optional[Artifact]:
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            blob = None
        if blob is not None:
            artifact = unpack_artifact(blob)
            if artifact is not None:
                self._count("hits")
                return artifact
            self._count("errors")
            try:
                path.unlink()
            except OSError:
                pass
        try:
            remote_blob = self.remote.get("artifact", key)
        except StoreError:
            self._count("remote_errors")
            remote_blob = None
        if remote_blob is not None:
            artifact = unpack_artifact(remote_blob)
            if artifact is not None:
                # Re-materialize into the overlay so the next request for
                # this key never leaves the shard.
                super().put(key, artifact)
                with self._lock:
                    self._stats["puts"] -= 1  # internal copy, not a user put
                    self._stats["hits"] += 1
                    self._stats["remote_hits"] += 1
                return artifact
            self._count("remote_errors")
        self._count("misses")
        return None

    def put(self, key: str, artifact: Artifact) -> None:
        super().put(key, artifact)
        try:
            self.remote.put("artifact", key, pack_artifact(artifact))
            self._count("remote_publishes")
        except StoreError:
            self._count("remote_errors")

    # -- native .so bundles ------------------------------------------------

    def _native_key(self, program, fuse: bool, memo: str) -> Optional[str]:
        """Shared-object store key for ``program`` as the VM builds it.

        Mirrors the VM's native pipeline exactly (fuse, then physical
        window lowering) so the key matches what
        :func:`repro.native.sharedlib.load_shared_program` computes.
        Returns None when no toolchain is available.
        """
        with self._native_lock:
            cached = self._native_keys.get(memo)
        if cached is not None:
            return cached or None
        from repro.errors import NativeToolchainError
        from repro.ir.fuse import fuse_program, lower_windows
        from repro.ir.vectorize import fingerprint
        from repro.native.compile import DEFAULT_FLAGS, compiler_identity
        from repro.native.sharedlib import shared_cache_key
        try:
            identity = compiler_identity(None)
        except NativeToolchainError:
            with self._native_lock:
                self._native_keys[memo] = ""
            return None
        if fuse:
            program, _ = fuse_program(program)
        key = shared_cache_key(fingerprint(lower_windows(program)),
                               identity, tuple(DEFAULT_FLAGS))
        with self._native_lock:
            self._native_keys[memo] = key
        return key

    def _so_paths(self, key: str):
        from repro.native.sharedlib import _cache_paths
        return _cache_paths(self.native_dir, key)

    def fetch_native(self, program, fuse: bool, memo: str) -> str:
        """Materialize the remote ``.so`` bundle locally if we lack it.

        Returns ``"local"`` (already on disk), ``"fetched"`` (downloaded
        from the store), ``"miss"`` (store lacks it — caller compiles),
        ``"unavailable"`` (no toolchain) or ``"error"``.  Memoized per
        ``memo`` so the request hot path pays nothing after the first
        sighting of an artifact.
        """
        with self._native_lock:
            seen = self._native_fetch_seen.get(memo)
        if seen is not None:
            return seen
        status = self._fetch_native_uncached(program, fuse, memo)
        if status != "error":  # transient store outages retry next request
            with self._native_lock:
                self._native_fetch_seen[memo] = status
        return status

    def _fetch_native_uncached(self, program, fuse: bool, memo: str) -> str:
        key = self._native_key(program, fuse, memo)
        if key is None:
            return "unavailable"
        so_path, c_path, json_path = self._so_paths(key)
        if so_path.exists():
            return "local"
        try:
            blob = self.remote.get("native", key)
        except StoreError:
            self._count("remote_errors")
            return "error"
        if blob is None:
            return "miss"
        bundle = unpack_native(blob)
        if bundle is None:
            self._count("remote_errors")
            return "miss"
        so_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=so_path.parent, suffix=".so.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(bundle["so"])
            os.replace(tmp, so_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        for path, text in ((c_path, bundle.get("c")),
                           (json_path, bundle.get("info"))):
            if isinstance(text, str):
                from repro.native.sharedlib import _atomic_write_text
                _atomic_write_text(path, text)
        self._count("native_fetched")
        return "fetched"

    def publish_native(self, program, fuse: bool, memo: str) -> bool:
        """Publish this shard's compiled ``.so`` (if any) to the store.

        Called after a native VM is built; at most one has/put exchange
        per ``memo`` per process.  Returns True when this call uploaded
        the bundle.
        """
        with self._native_lock:
            if memo in self._native_publish_seen:
                return False
        key = self._native_key(program, fuse, memo)
        published = False
        if key is not None:
            so_path, c_path, json_path = self._so_paths(key)
            if so_path.exists():
                try:
                    if not self.remote.has("native", key):
                        blob = pack_native(
                            so_path.read_bytes(),
                            c_path.read_text() if c_path.exists() else "",
                            json_path.read_text() if json_path.exists()
                            else "")
                        self.remote.put("native", key, blob)
                        self._count("native_published")
                        published = True
                except (StoreError, OSError):
                    self._count("remote_errors")
                    return False
            else:
                return False  # nothing built yet; retry on a later request
        with self._native_lock:
            self._native_publish_seen.add(memo)
        return published
