"""Serving benchmark: throughput/latency vs worker count, cold vs warm.

Measures the three effects the serve subsystem exists to deliver:

* **worker scaling** — closed-loop throughput and latency percentiles of
  ``run`` requests across several pool sizes;
* **warm vs cold** — first-touch latency (model build + analysis +
  codegen + VM compile) against steady-state latency served from the
  warm per-worker VM caches;
* **restart persistence** — after a full server restart on the same
  cache directory, ``compile`` is answered from the on-disk artifact
  cache without re-running code generation;
* **request coalescing** — warm closed-loop throughput at high
  concurrency with the micro-batching queue enabled vs disabled
  (``max_batch=1``), plus the observed batch-occupancy distribution;
* **native serving** (when a C toolchain is present) — first
  ``backend="native"`` request pays the C compiler once, steady-state
  requests execute the cached ``.so``, and after a restart on the same
  cache directory the first native request dlopens the persisted
  shared object without re-running codegen *or* the compiler.

Writes ``BENCH_serve.json`` at the repo root so successive PRs can track
the serving trajectory alongside ``BENCH_vm.json``.  Run via
``frodo bench-serve`` or ``python benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

DEFAULT_WORKER_COUNTS = (1, 2, 4)
QUICK_WORKER_COUNTS = (1, 2)
DEFAULT_MODELS = ("Motivating", "AudioProcess")


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def _latency_summary(seconds: list[float]) -> dict:
    ordered = sorted(seconds)
    return {
        "count": len(ordered),
        "mean_ms": round(statistics.fmean(ordered) * 1e3, 3),
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round(ordered[-1] * 1e3, 3),
    }


def _closed_loop(port: int, models: tuple[str, ...], generator: str,
                 steps: int, concurrency: int,
                 requests_per_client: int, backend: str = "auto") -> dict:
    """``concurrency`` clients issuing ``run`` back-to-back; aggregate."""
    from repro.serve.client import ServeClient
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency

    def client_loop(slot: int) -> None:
        with ServeClient(port=port) as client:
            for i in range(requests_per_client):
                model = models[(slot + i) % len(models)]
                t0 = time.perf_counter()
                try:
                    client.run(model, generator=generator, steps=steps,
                               backend=backend, include_outputs=False)
                except Exception:
                    errors[slot] += 1
                latencies[slot].append(time.perf_counter() - t0)

    threads = [threading.Thread(target=client_loop, args=(slot,))
               for slot in range(concurrency)]
    wall0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall0
    flat = [s for per_client in latencies for s in per_client]
    total = len(flat)
    return {
        "concurrency": concurrency,
        "requests": total,
        "errors": sum(errors),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / wall, 2) if wall else None,
        "latency": _latency_summary(flat),
    }


def bench_worker_count(workers: int, cache_dir: str,
                       models: tuple[str, ...], generator: str, steps: int,
                       concurrency: int, requests_per_client: int) -> dict:
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread
    config = ServeConfig(workers=workers, cache_dir=cache_dir,
                         timeout_seconds=120.0,
                         max_pending=max(64, concurrency * 2))
    with ServerThread(config) as server_thread:
        port = server_thread.server.port
        cold = {}
        with ServeClient(port=port) as client:
            for model in models:
                t0 = time.perf_counter()
                client.run(model, generator=generator, steps=steps,
                           include_outputs=False)
                cold[model] = round((time.perf_counter() - t0) * 1e3, 3)
        warm = _closed_loop(port, models, generator, steps, concurrency,
                            requests_per_client)
        with ServeClient(port=port) as client:
            snapshot = client.metrics(render=False)["snapshot"]
    return {
        "workers": workers,
        "cold_first_request_ms": cold,
        "warm": warm,
        "vm_cache_hit_rate": snapshot["vm_cache_hit_rate"],
        "artifact_cache_hit_rate": snapshot["artifact_cache_hit_rate"],
    }


def bench_coalescing(cache_dir: str, models: tuple[str, ...],
                     generator: str, steps: int, concurrency: int,
                     requests_per_client: int, max_batch: int = 16,
                     max_wait_ms: float = 2.0) -> dict:
    """Warm closed-loop throughput with the coalescer off vs on.

    Same workload twice at high concurrency: first against a server with
    ``max_batch=1`` (every run is its own worker call), then with the
    micro-batching queue enabled.  Reports both runs, the speedup, and
    the batch-occupancy distribution the coalescer actually achieved.
    """
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread
    rows = {}
    occupancy = None
    for label, batch in (("coalescing_off", 1), ("coalescing_on", max_batch)):
        config = ServeConfig(workers=2, cache_dir=cache_dir,
                             timeout_seconds=120.0,
                             max_pending=max(64, concurrency * 2),
                             max_batch=batch, max_batch_wait_ms=max_wait_ms)
        with ServerThread(config) as server_thread:
            port = server_thread.server.port
            with ServeClient(port=port) as client:
                for model in models:  # warm caches out of the timed loop
                    client.run(model, generator=generator, steps=steps,
                               include_outputs=False)
            rows[label] = _closed_loop(port, models, generator, steps,
                                       concurrency, requests_per_client)
            if batch > 1:
                with ServeClient(port=port) as client:
                    snap = client.metrics(render=False)["snapshot"]
                occ = snap["batch_occupancy"]
                occupancy = occ[0] if occ else None
    off = rows["coalescing_off"]["throughput_rps"] or 1.0
    on = rows["coalescing_on"]["throughput_rps"] or 0.0
    return {
        "concurrency": concurrency,
        "max_batch": max_batch,
        "max_batch_wait_ms": max_wait_ms,
        **rows,
        "speedup": round(on / off, 2),
        "batch_occupancy": occupancy,
    }


def bench_corpus_diversity(cache_dir: str, n: int, generator: str,
                           steps: int, concurrency: int,
                           requests_per_client: int,
                           blocks: int = 12) -> dict:
    """Hot 2-model traffic vs ``n`` distinct generated fingerprints.

    Both workloads address models by ``corpus:<seed>:<blocks>`` spec, so
    every request resolves through the same generator path; the only
    difference is fingerprint diversity.  The hot phase round-robins two
    specs over fully warmed caches — the steady state the per-worker VM
    cache is built for.  The diverse phase round-robins ``n`` distinct
    specs with no pre-warming, so the first pass pays model generation,
    analysis, codegen, and VM construction per fingerprint and the cache
    hit rate reflects real churn.
    """
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread
    specs = tuple(f"corpus:{seed}:{blocks}" for seed in range(n))
    hot = specs[:2]
    config = ServeConfig(workers=2, cache_dir=cache_dir,
                         timeout_seconds=120.0,
                         max_pending=max(64, concurrency * 2))
    rows = {}
    with ServerThread(config) as server_thread:
        port = server_thread.server.port
        with ServeClient(port=port) as client:
            for spec in hot:  # warm the hot set out of the timed loop
                client.run(spec, generator=generator, steps=steps,
                           include_outputs=False)
        rows["hot"] = _closed_loop(port, hot, generator, steps,
                                   concurrency, requests_per_client)
        rows["diverse"] = _closed_loop(port, specs, generator, steps,
                                       concurrency, requests_per_client)
        with ServeClient(port=port) as client:
            snapshot = client.metrics(render=False)["snapshot"]
    hot_rps = rows["hot"]["throughput_rps"] or 1.0
    diverse_rps = rows["diverse"]["throughput_rps"] or 0.0
    return {
        "models": n,
        "blocks": blocks,
        "hot_models": len(hot),
        **rows,
        "diverse_vs_hot": round(diverse_rps / hot_rps, 2),
        "vm_cache_hit_rate": snapshot["vm_cache_hit_rate"],
    }


def bench_restart(cache_dir: str, models: tuple[str, ...],
                  generator: str) -> dict:
    """Fresh server on a populated cache dir: compile must skip codegen."""
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread
    config = ServeConfig(workers=1, cache_dir=cache_dir)
    with ServerThread(config) as server_thread:
        port = server_thread.server.port
        rows = {}
        all_hits = True
        with ServeClient(port=port) as client:
            for model in models:
                t0 = time.perf_counter()
                client.compile(model, generator=generator)
                elapsed = round((time.perf_counter() - t0) * 1e3, 3)
                rows[model] = elapsed
            snapshot = client.metrics(render=False)["snapshot"]
            hits = sum(r["value"] for r in snapshot["cache_events_total"]
                       if r["labels"] == {"cache": "artifact",
                                          "event": "hit"})
            all_hits = hits >= len(models)
    return {"compile_after_restart_ms": rows,
            "served_from_artifact_cache": bool(all_hits)}


def bench_native(cache_dir: str, models: tuple[str, ...], generator: str,
                 steps: int = 1) -> dict:
    """Native-backend serving: first build vs warm ``.so`` vs restart.

    Skipped (with a note in the report) when no C compiler is on PATH —
    the serve layer would answer every native request with a typed
    ``native_unavailable`` error, which is correct but not a benchmark.
    """
    from repro.native import find_compiler
    if find_compiler() is None:
        return {"skipped": "no C compiler on PATH"}
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    rows: dict[str, dict] = {}
    config = ServeConfig(workers=1, cache_dir=cache_dir,
                         timeout_seconds=600.0)
    with ServerThread(config) as server_thread:
        port = server_thread.server.port
        with ServeClient(port=port) as client:
            for model in models:
                t0 = time.perf_counter()
                result = client.run(model, generator=generator, steps=steps,
                                    backend="native", include_outputs=False)
                first = round((time.perf_counter() - t0) * 1e3, 3)
                t0 = time.perf_counter()
                client.run(model, generator=generator, steps=steps,
                           backend="native", include_outputs=False)
                warm = round((time.perf_counter() - t0) * 1e3, 3)
                rows[model] = {
                    "first_request_ms": first,
                    "warm_request_ms": warm,
                    "counts_exact": bool(result.get("counts_exact", True)),
                }
    # Fresh server on the same cache dir: the persisted .so must be
    # dlopened directly — no code generation, no C compiler invocation.
    with ServerThread(ServeConfig(workers=1, cache_dir=cache_dir)) as st:
        port = st.server.port
        with ServeClient(port=port) as client:
            for model in models:
                t0 = time.perf_counter()
                client.run(model, generator=generator, steps=steps,
                           backend="native", include_outputs=False)
                rows[model]["restart_first_request_ms"] = round(
                    (time.perf_counter() - t0) * 1e3, 3)
    return {"rows": rows}


def bench_adaptive(cache_dir: str, generator: str, steps: int,
                   concurrency: int, requests_per_client: int,
                   corpus_n: int = 6, blocks: int = 12,
                   hot_model: str = "Motivating") -> dict:
    """Tiered adaptive execution: cold-traffic safety + hot promotion.

    Two claims, measured separately:

    * **cold diverse corpus** — the adaptive tier must never make cold
      traffic worse: the same unwarmed ``corpus:<seed>:<blocks>`` sweep
      is served once by a vector-only server (``backend="vector"``) and
      once by an adaptive server (``backend="auto"``) running the
      *default* cost-seeded promotion policy.  Cold low-heat
      fingerprints never pay for their compile estimate, so the policy's
      guardrail is what's under test: no background compiles are
      spent on cold traffic and adaptive p99 stays within noise of
      vector-only.  (With an aggressive fixed threshold the compiles
      themselves still never block a request, but gcc competes for the
      same cores — that regime is covered by the hot-model section,
      where the compile is paid for.)
    * **hot model** — one model hammered with ``backend="auto"`` on an
      adaptive server: records how long (and how many requests) until a
      response reports ``backend_effective == "native"``, then compares
      steady-state adaptive-auto latency against explicit
      ``backend="native"`` on the same warm server (the static-native
      bound it should match once promoted).

    Skipped with a note when no C toolchain is present — promotion would
    only exercise the demotion path (covered by integration tests).
    """
    from repro.native import find_compiler
    if find_compiler() is None:
        return {"skipped": "no C compiler on PATH"}
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    specs = tuple(f"corpus:{seed}:{blocks}" for seed in range(corpus_n))
    cold = {}
    for label, adaptive, backend in (("vector_only", False, "vector"),
                                     ("adaptive_auto", True, "auto")):
        config = ServeConfig(workers=2,
                             cache_dir=str(Path(cache_dir) / label),
                             timeout_seconds=120.0,
                             max_pending=max(64, concurrency * 2),
                             adaptive=adaptive)
        with ServerThread(config) as server_thread:
            cold[label] = _closed_loop(
                server_thread.server.port, specs, generator, steps,
                concurrency, requests_per_client, backend=backend)
    p99_vector = cold["vector_only"]["latency"]["p99_ms"]
    p99_adaptive = cold["adaptive_auto"]["latency"]["p99_ms"]

    hot = {"model": hot_model}
    config = ServeConfig(workers=1, cache_dir=str(Path(cache_dir) / "hot"),
                         timeout_seconds=600.0, adaptive=True,
                         promote_threshold_ms=0.0)
    with ServerThread(config) as server_thread:
        port = server_thread.server.port
        with ServeClient(port=port) as client:
            t0 = time.perf_counter()
            promoted_after = None
            requests_before = 0
            deadline = t0 + 120.0
            while time.perf_counter() < deadline:
                result = client.run(hot_model, generator=generator,
                                    steps=steps, include_outputs=False)
                if result.get("backend_effective") == "native":
                    promoted_after = time.perf_counter() - t0
                    break
                requests_before += 1
                time.sleep(0.02)  # let the background compile land
            snapshot = client.metrics(render=False)["snapshot"]
        hot["time_to_promotion_s"] = (round(promoted_after, 3)
                                      if promoted_after is not None else None)
        hot["requests_before_promotion"] = requests_before
        hot["promotions_total"] = snapshot.get("backend_promotions_total", 0)
        hot["adaptive_state"] = snapshot.get("adaptive_state")
        if promoted_after is not None:
            steady_auto = _closed_loop(port, (hot_model,), generator, steps,
                                       1, requests_per_client)
            steady_native = _closed_loop(port, (hot_model,), generator,
                                         steps, 1, requests_per_client,
                                         backend="native")
            hot["steady_auto"] = steady_auto
            hot["steady_native"] = steady_native
            native_rps = steady_native["throughput_rps"] or 1.0
            auto_rps = steady_auto["throughput_rps"] or 0.0
            hot["auto_vs_native"] = round(auto_rps / native_rps, 3)
            hot["within_10pct_of_native"] = auto_rps >= 0.9 * native_rps

    return {
        "cold_corpus": {
            "models": corpus_n,
            "blocks": blocks,
            **cold,
            "p99_vector_ms": p99_vector,
            "p99_adaptive_ms": p99_adaptive,
            # 10% tolerance absorbs scheduler noise on short runs; the
            # claim under test is "promotion never blocks a request".
            "p99_no_worse": p99_adaptive <= p99_vector * 1.10,
        },
        "hot_promotion": hot,
    }


def run_bench(worker_counts=DEFAULT_WORKER_COUNTS,
              models: tuple[str, ...] = DEFAULT_MODELS,
              generator: str = "frodo", steps: int = 1,
              concurrency: int = 4, requests_per_client: int = 25,
              cache_dir: str | None = None, corpus: int = 0) -> dict:
    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="bench-serve-")
        cache_dir = owned_tmp.name
    try:
        scaling = [
            bench_worker_count(workers, cache_dir, models, generator, steps,
                               concurrency, requests_per_client)
            for workers in worker_counts
        ]
        # Coalescing is a hot-model optimization: buckets only form among
        # requests for the same (model, generator, backend, steps), so the
        # section drives one model at high concurrency — the workload the
        # queue exists for.  Worker scaling above covers the mixed case.
        coalescing = bench_coalescing(
            cache_dir, models[:1], generator, steps,
            concurrency=max(8, concurrency),
            requests_per_client=requests_per_client)
        restart = bench_restart(cache_dir, models, generator)
        native = bench_native(cache_dir, models, generator, steps)
        # The adaptive section owns its cache subtree: promotion state must
        # come from *its* traffic, not the zoo warm-up above.
        adaptive = bench_adaptive(
            str(Path(cache_dir) / "adaptive"), generator, steps,
            concurrency, requests_per_client,
            corpus_n=corpus if corpus else 6)
        # Corpus diversity gets its own cache subdirectory so the hot
        # phase's warm-up cannot be polluted by the zoo sections above.
        corpus_diversity = None
        if corpus:
            corpus_cache = str(Path(cache_dir) / "corpus")
            corpus_diversity = bench_corpus_diversity(
                corpus_cache, corpus, generator, steps, concurrency,
                requests_per_client)
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    base = scaling[0]["warm"]["throughput_rps"] or 1.0
    for row in scaling:
        rps = row["warm"]["throughput_rps"]
        row["scaling_vs_1_worker"] = round(rps / base, 2) if rps else None
    return {
        "benchmark": "serve",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": __import__("os").cpu_count(),
        },
        "config": {
            "models": list(models),
            "generator": generator,
            "steps": steps,
            "concurrency": concurrency,
            "requests_per_client": requests_per_client,
            "worker_counts": list(worker_counts),
        },
        "worker_scaling": scaling,
        "coalescing": coalescing,
        "restart": restart,
        "native": native,
        "adaptive": adaptive,
        "corpus_diversity": corpus_diversity,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_serve",
        description="serve-layer throughput/latency benchmark "
                    "(BENCH_serve.json trajectory)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer workers and requests")
    parser.add_argument("--output", default=None,
                        help="output JSON path "
                             "(default: <repo>/BENCH_serve.json)")
    parser.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS))
    parser.add_argument("--generator", default="frodo")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25,
                        help="warm-phase requests per client")
    parser.add_argument("--corpus", type=int, default=0, metavar="N",
                        help="also benchmark hot-vs-diverse traffic over N "
                             "distinct corpus:<seed>:<blocks> fingerprints")
    args = parser.parse_args(argv)

    if args.quick:
        worker_counts = QUICK_WORKER_COUNTS
        concurrency = min(args.concurrency, 2)
        requests = min(args.requests, 5)
    else:
        worker_counts = DEFAULT_WORKER_COUNTS
        concurrency = args.concurrency
        requests = args.requests

    result = run_bench(worker_counts=worker_counts,
                       models=tuple(args.models), generator=args.generator,
                       concurrency=concurrency, requests_per_client=requests,
                       corpus=args.corpus)
    result["quick"] = bool(args.quick)
    result["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")

    out_path = (Path(args.output) if args.output
                else Path(__file__).resolve().parents[3] / "BENCH_serve.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    for row in result["worker_scaling"]:
        warm = row["warm"]
        print(f"workers={row['workers']}: {warm['throughput_rps']} req/s, "
              f"p50={warm['latency']['p50_ms']}ms "
              f"p95={warm['latency']['p95_ms']}ms "
              f"(x{row['scaling_vs_1_worker']} vs 1 worker), "
              f"vm_hit_rate={row['vm_cache_hit_rate']}")
    coal = result["coalescing"]
    occ = coal["batch_occupancy"]
    print(f"coalescing@c={coal['concurrency']}: "
          f"off {coal['coalescing_off']['throughput_rps']} req/s -> "
          f"on {coal['coalescing_on']['throughput_rps']} req/s "
          f"(x{coal['speedup']}), "
          f"p99 {coal['coalescing_on']['latency']['p99_ms']}ms, "
          f"mean occupancy "
          f"{occ['mean_seconds'] if occ else 'n/a'}")
    print(f"restart compile from artifact cache: "
          f"{result['restart']['compile_after_restart_ms']} "
          f"(hit={result['restart']['served_from_artifact_cache']})")
    diversity = result["corpus_diversity"]
    if diversity:
        print(f"corpus diversity: hot({diversity['hot_models']} models) "
              f"{diversity['hot']['throughput_rps']} req/s vs "
              f"diverse({diversity['models']} models) "
              f"{diversity['diverse']['throughput_rps']} req/s "
              f"(x{diversity['diverse_vs_hot']}), "
              f"vm_hit_rate={diversity['vm_cache_hit_rate']}")
    native = result["native"]
    if "skipped" in native:
        print(f"native serving: skipped ({native['skipped']})")
    else:
        for model, row in native["rows"].items():
            print(f"native {model}: first {row['first_request_ms']}ms -> "
                  f"warm {row['warm_request_ms']}ms, restart-from-.so "
                  f"{row['restart_first_request_ms']}ms")
    adaptive = result["adaptive"]
    if "skipped" in adaptive:
        print(f"adaptive serving: skipped ({adaptive['skipped']})")
    else:
        cold = adaptive["cold_corpus"]
        print(f"adaptive cold corpus ({cold['models']} models): "
              f"p99 vector {cold['p99_vector_ms']}ms vs "
              f"adaptive auto {cold['p99_adaptive_ms']}ms "
              f"(no_worse={cold['p99_no_worse']})")
        hot = adaptive["hot_promotion"]
        if hot.get("time_to_promotion_s") is not None:
            print(f"adaptive hot {hot['model']}: promoted to native after "
                  f"{hot['time_to_promotion_s']}s "
                  f"({hot['requests_before_promotion']} vector-served "
                  f"requests); steady auto-vs-native "
                  f"x{hot.get('auto_vs_native')} "
                  f"(within_10pct={hot.get('within_10pct_of_native')})")
        else:
            print(f"adaptive hot {hot['model']}: promotion did not land "
                  f"within the deadline")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
