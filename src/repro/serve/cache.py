"""Persistent content-addressed artifact cache for generated programs.

A served ``compile`` or ``run`` request costs model construction +
dataflow analysis + range determination + code generation before a single
element is executed.  All of that is a pure function of
``(model, generator)``, so the service stores the result — the lowered
:class:`~repro.ir.ops.Program` plus its inport/outport buffer maps and
summary statistics — on disk, keyed by a content address::

    <cache_dir>/objects/<aa>/<hash>.artifact

where ``hash = sha256(model_fingerprint : generator : backend)`` and the
model fingerprint is the sha256 of the model's canonical ``.mdl`` text
(so the same model uploaded as ``.slx`` or referenced as a zoo name
shares one artifact).  A restarted server therefore skips code generation
entirely for every model it has seen before — the SLNET observation that
corpus-scale workloads re-invoke the generator over the same models far
more often than models change.

Writes are atomic (temp file + ``os.replace``) so concurrent worker
processes sharing one cache directory can never observe a torn artifact;
racing writers simply overwrite each other with identical bytes.
Artifacts are pickled — the cache directory is a private, server-written
store, not an interchange format; unreadable or version-skewed entries
are treated as misses and rewritten.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.ir.ops import Program

#: Bump when the artifact payload layout changes; older entries become
#: cache misses instead of deserialization errors.
ARTIFACT_VERSION = 1


@dataclass
class Artifact:
    """One cached compilation result."""

    model_fingerprint: str
    model_name: str
    generator: str
    backend: str
    program: Program
    #: Inport block name -> program input buffer name.
    input_buffers: dict[str, str] = field(default_factory=dict)
    #: Outport block name -> program output buffer name.
    output_buffers: dict[str, str] = field(default_factory=dict)
    #: Cheap summary stats (static_bytes, eliminated elements, ...).
    stats: dict = field(default_factory=dict)


def _canonical_model_lines(model, out: list) -> None:
    """Order-independent serialization of a model's semantic content.

    Blocks are sorted by (unique) name and connections by endpoint, so two
    models that differ only in insertion order — e.g. a zoo build versus
    its ``.slx`` round-trip, whose ``<Line>`` elements are regrouped —
    fingerprint identically.  Parameter values go through the ``.slx``
    encoder, which already canonicalizes numpy arrays and scalars.
    """
    from repro.model.slx import encode_param
    out.append(f"model:{model.name};")
    for name in sorted(model.blocks):
        block = model.blocks[name]
        out.append(f"block:{name}:{block.block_type}(")
        for key in sorted(block.params):
            tag, text = encode_param(block.params[key])
            out.append(f"{key}={tag}:{text},")
        out.append(");")
    for conn in sorted(model.connections, key=lambda c: (
            c.src, c.src_port, c.dst, c.dst_port)):
        out.append(f"line:{conn.src}:{conn.src_port}"
                   f"->{conn.dst}:{conn.dst_port};")
    for name in sorted(model.subsystems):
        out.append(f"subsystem:{name}{{")
        _canonical_model_lines(model.subsystems[name], out)
        out.append("}")


def model_fingerprint(model) -> str:
    """Stable content hash of a model's canonical serialized form."""
    out: list = []
    _canonical_model_lines(model, out)
    return hashlib.sha256("".join(out).encode()).hexdigest()


def artifact_key(model_fp: str, generator: str, backend: str = "-",
                 fuse: bool = True) -> str:
    """Content address for one (model, generator, backend, fuse) cell.

    ``fuse`` participates in the key so a ``fuse: false`` request can
    never be served an artifact whose stats or emitted source reflect
    the IR-level loop-fusion pass (and vice versa).
    """
    return hashlib.sha256(
        f"{model_fp}:{generator}:{backend}:fuse={int(bool(fuse))}"
        .encode()).hexdigest()


class ArtifactCache:
    """On-disk artifact store shared by every worker of a server.

    Thread-safe for in-process use (a lock guards the hit/miss counters;
    filesystem operations are atomic on their own) and process-safe across
    workers via write-to-temp + rename.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._stats = {"hits": 0, "misses": 0, "puts": 0, "errors": 0}

    # -- addressing --------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.artifact"

    @property
    def native_dir(self) -> Path:
        """Shared-object store for ``backend="native"`` executions.

        Sibling of ``objects/`` so one ``--cache-dir`` carries both the
        generated programs and their compiled ``.so`` artifacts (source +
        build metadata alongside, see :mod:`repro.native.sharedlib`).
        Keys there already include the program fingerprint, compiler
        identity, and flags, so this directory is safely shared by every
        worker process and survives restarts — a warm entry lets a
        restarted server skip code generation *and* the C compiler.
        """
        path = self.root / "native"
        path.mkdir(parents=True, exist_ok=True)
        return path

    # -- operations --------------------------------------------------------

    def get(self, key: str) -> Optional[Artifact]:
        """Load the artifact at ``key``, or None (counted as a miss).

        Corrupt, truncated, or version-skewed entries are deleted and
        reported as misses — the caller regenerates and overwrites.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._count("misses")
            return None
        try:
            version, artifact = pickle.loads(blob)
            if version != ARTIFACT_VERSION or not isinstance(artifact, Artifact):
                raise ValueError(f"artifact version {version!r}")
        except Exception:
            self._count("errors")
            self._count("misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hits")
        return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        """Atomically persist ``artifact`` at ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        buf = io.BytesIO()
        pickle.dump((ARTIFACT_VERSION, artifact), buf,
                    protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buf.getvalue())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("puts")

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        for path in self.root.glob("objects/*/*.artifact"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("objects/*/*.artifact"))

    def disk_bytes(self) -> int:
        return sum(p.stat().st_size
                   for p in self.root.glob("objects/*/*.artifact"))

    # -- stats -------------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._lock:
            self._stats[name] += 1

    def stats(self) -> dict:
        with self._lock:
            return dict(self._stats)
