"""Cluster benchmark: shard scaling, cold-compile dedup, kill recovery.

Writes ``BENCH_cluster.json`` — the fleet-level companion to
``BENCH_serve.json``.  Three sections, each against a real
``ClusterSupervisor`` (store thread + shard subprocesses + router):

* **scaling** — the *same* hot-fingerprint workload (a fixed set of
  corpus specs, warmed, coalescing off) swept closed-loop against 1, 2,
  4 and 8 shards, best-of-``repeats``.  On a single-core host the
  per-request CPU cost is constant whatever the shard count, so the
  honest expectation is *flat-to-monotone* throughput, not linear
  speedup; the section records a tolerance-based monotonic flag (every
  1→4-shard cell ≥ 0.95× the single-shard baseline — sharding must
  never cost hot-path throughput).  The **sleep-op concurrency curve**
  subsection is the architectural evidence: ``sleep`` holds a worker
  without using CPU, so its closed-loop throughput scales with the
  fleet's worker count even on one core — demonstrating the router
  actually spreads concurrent load over independent shards.
* **dedup** — a fresh store, N distinct fingerprints swept through the
  router: the fleet's merged artifact-miss count must equal the number
  of distinct fingerprints (each compiled exactly once, wherever it
  hashed).  Then one shard is drained away *without* replacement and
  the sweep repeats: the survivors inherit its slice and serve it from
  the shared store with **zero new compiles**.
* **kill_recovery** — sustained mixed traffic while one shard is
  SIGKILLed mid-flight; the router's ring-order retry plus the
  supervisor respawn must deliver **zero failed requests**.

Run via ``python benchmarks/bench_serve.py --cluster`` or
``frodo bench-serve --cluster`` (``--quick`` shrinks shard counts and
request volumes for CI).
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.serve.bench import _closed_loop, _latency_summary

#: Shard counts the scaling section sweeps.
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
QUICK_SHARD_COUNTS = (1, 2)

#: Fixed hot workload: identical across every shard count so the rows
#: are comparable.  Small corpus programs keep the per-request cost low
#: enough that routing overhead is visible at all.
HOT_SPECS = tuple(f"corpus:{seed}:3" for seed in range(8))

#: Per-step throughput tolerance for the monotonic flag: run-to-run
#: jitter on a loaded host must not read as a scaling regression.
MONOTONIC_TOLERANCE = 0.95


@contextmanager
def _cluster(shards: int, root: str, workers_per_shard: int = 1,
             allow_debug: bool = False, max_batch: int = 1,
             respawn: bool = True):
    from repro.serve.cluster import ClusterConfig, ClusterSupervisor
    from repro.serve.server import ServeConfig
    config = ClusterConfig(
        shards=shards,
        template=ServeConfig(timeout_seconds=120.0, max_pending=64,
                             allow_debug=allow_debug, max_batch=max_batch),
        workers_per_shard=workers_per_shard, root=root, respawn=respawn)
    supervisor = ClusterSupervisor(config)
    port = supervisor.start()
    try:
        yield supervisor, port
    finally:
        supervisor.stop()


def _warm(port: int, specs: tuple[str, ...], generator: str,
          steps: int) -> None:
    from repro.serve.client import ServeClient
    with ServeClient(port=port) as client:
        for spec in specs:
            for _ in range(2):  # artifact + VM caches on the home shard
                client.run(spec, generator=generator, steps=steps,
                           include_outputs=False)


def _shard_miss_counts(snapshot: dict) -> dict[str, int]:
    """Per-shard artifact-miss counters from a merged snapshot."""
    counts: dict[str, int] = {}
    for row in snapshot.get("cache_events_total", ()):
        labels = row.get("labels", {})
        if (labels.get("cache") == "artifact"
                and labels.get("event") == "miss"):
            counts[labels.get("shard", "")] = \
                counts.get(labels.get("shard", ""), 0) + int(row["value"])
    return counts


# -- scaling -------------------------------------------------------------------


#: Extra interleaved measurement rounds allowed when the monotonic flag
#: would fail — the same retry-on-noise policy as ``tools/perf_gate.py``.
RESCUE_ROUNDS = 2


def bench_scaling(root: str, shard_counts, specs: tuple[str, ...],
                  generator: str, steps: int, concurrency: int,
                  requests_per_client: int, repeats: int = 2) -> dict:
    shard_counts = list(shard_counts)
    best: dict[int, dict] = {}

    def measure_round(tag: int) -> None:
        # Interleaved: one cell per shard count per round, so slow drift
        # in machine state biases every count equally instead of
        # penalising whichever count happened to run last.
        for n in shard_counts:
            with _cluster(n, f"{root}/scale-{n}-{tag}") as (_, port):
                _warm(port, specs, generator, steps)
                run = _closed_loop(port, specs, generator, steps,
                                   concurrency, requests_per_client)
            if n not in best or (run["throughput_rps"] or 0) \
                    > (best[n]["throughput_rps"] or 0):
                best[n] = run

    def flag() -> bool:
        # The acceptance window is 1→4 shards; the flag is measured
        # against the single-shard baseline (not step-to-step) so that
        # run-to-run scheduler noise between two multi-shard cells on a
        # core-starved host cannot fail a fleet that never drops below
        # what one shard delivers.  Real parallel speedup shows in
        # scaling_vs_1_shard and in the sleep-op curve.
        base = best[shard_counts[0]].get("throughput_rps") or 1.0
        return all((best[n].get("throughput_rps") or 0.0)
                   >= MONOTONIC_TOLERANCE * base
                   for n in shard_counts if n <= 4)

    for rep in range(repeats):
        measure_round(rep)
    # A closed-loop cell on a loaded host is noise-bound; re-measure all
    # cells (keeping per-cell bests) before declaring a real violation.
    rescues = 0
    while not flag() and rescues < RESCUE_ROUNDS:
        measure_round(repeats + rescues)
        rescues += 1

    rows = []
    base = best[shard_counts[0]].get("throughput_rps") or 1.0
    for n in shard_counts:
        rps = best[n].get("throughput_rps") or 0.0
        rows.append({"shards": n, **best[n],
                     "scaling_vs_1_shard": round(rps / base, 3)
                     if base else None})
    return {
        "workload": {"specs": list(specs), "steps": steps,
                     "concurrency": concurrency,
                     "requests_per_client": requests_per_client,
                     "repeats": repeats, "coalescing": "off"},
        "rows": rows,
        "monotonic_1_to_4": flag(),
        "tolerance": MONOTONIC_TOLERANCE,
        "rescue_rounds": rescues,
    }


def bench_sleep_curve(root: str, shard_counts, concurrency: int,
                      requests_per_client: int,
                      sleep_seconds: float = 0.05) -> dict:
    """Closed-loop ``sleep`` throughput vs shard count.

    Sleep holds a worker slot without CPU, so — unlike model execution
    on a single-core host — throughput here genuinely tracks the
    fleet's aggregate worker count.  ``sleep`` carries no model, so the
    router spreads it round-robin.
    """
    from repro.serve.client import ServeClient
    rows = []
    for n in shard_counts:
        with _cluster(n, f"{root}/sleep-{n}", allow_debug=True) as (_, port):
            latencies: list[float] = []
            errors = [0]
            lock = threading.Lock()

            def loop() -> None:
                with ServeClient(port=port) as client:
                    for _ in range(requests_per_client):
                        t0 = time.perf_counter()
                        try:
                            client.request("sleep", seconds=sleep_seconds)
                        except Exception:
                            with lock:
                                errors[0] += 1
                        with lock:
                            latencies.append(time.perf_counter() - t0)

            threads = [threading.Thread(target=loop)
                       for _ in range(concurrency)]
            wall0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - wall0
        total = len(latencies)
        rows.append({
            "shards": n,
            "requests": total,
            "errors": errors[0],
            "throughput_rps": round(total / wall, 2) if wall else None,
            "ideal_rps": round(min(concurrency, n) / sleep_seconds, 2),
            "latency": _latency_summary(latencies),
        })
    base = rows[0].get("throughput_rps") or 1.0
    for row in rows:
        rps = row.get("throughput_rps") or 0.0
        row["scaling_vs_1_shard"] = round(rps / base, 3) if base else None
    return {"sleep_seconds": sleep_seconds, "concurrency": concurrency,
            "rows": rows}


# -- cold-compile dedup --------------------------------------------------------


def bench_dedup(root: str, shards: int, fingerprints: int, generator: str,
                steps: int) -> dict:
    """Distinct fingerprints compile once *fleet-wide*, and survivors of
    a drained shard serve its slice from the store with no new compiles.
    """
    from repro.serve.client import ServeClient
    specs = tuple(f"corpus:{seed}:3" for seed in range(fingerprints))
    with _cluster(shards, f"{root}/dedup", respawn=False) as (sup, port):
        with ServeClient(port=port) as client:
            for spec in specs:
                client.run(spec, generator=generator, steps=steps,
                           include_outputs=False)
            before = _shard_miss_counts(
                client.metrics(render=False)["snapshot"])
            cold_compiles = sum(before.values())
            # Retire one shard for good: its slice re-hashes to the
            # survivors, which must find every artifact in the store.
            drained = next(iter(sup.shard_ports()))
            sup.drain_shard(drained, respawn=False)
            for spec in specs:
                client.run(spec, generator=generator, steps=steps,
                           include_outputs=False)
            after = _shard_miss_counts(
                client.metrics(render=False)["snapshot"])
        store_counts = dict(sup.store.counts) if sup.store else {}
    # The drained shard's rows leave the merged view with it; new misses
    # are survivor-side deltas only.
    new_misses = sum(max(0, after.get(shard, 0) - before.get(shard, 0))
                     for shard in after)
    return {
        "shards": shards,
        "distinct_fingerprints": len(specs),
        "cold_compiles": cold_compiles,
        "dedup_exact": cold_compiles == len(specs),
        "drained_shard": drained,
        "resweep_new_compiles": new_misses,
        "served_from_store_after_drain": new_misses == 0,
        "store_counts": store_counts,
    }


# -- shard-kill recovery -------------------------------------------------------


def bench_kill_recovery(root: str, shards: int, specs: tuple[str, ...],
                        generator: str, steps: int, concurrency: int,
                        duration_seconds: float = 6.0,
                        kill_after_seconds: float = 1.5) -> dict:
    from repro.serve.client import ServeClient
    with _cluster(shards, f"{root}/kill") as (sup, port):
        _warm(port, specs, generator, steps)
        stop = threading.Event()
        counts = [0] * concurrency
        errors: list[list[str]] = [[] for _ in range(concurrency)]

        def loop(slot: int) -> None:
            with ServeClient(port=port) as client:
                i = 0
                while not stop.is_set():
                    spec = specs[(slot + i) % len(specs)]
                    i += 1
                    try:
                        client.run(spec, generator=generator, steps=steps,
                                   include_outputs=False)
                        counts[slot] += 1
                    except Exception as exc:  # noqa: BLE001 — count, report
                        errors[slot].append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=loop, args=(slot,))
                   for slot in range(concurrency)]
        for t in threads:
            t.start()
        time.sleep(kill_after_seconds)
        victim = sup.router.server.ring.node(f"model:{specs[0]}") \
            if sup.router and sup.router.server else "s0"
        spawn_count = sup._find(victim).spawn_count
        kill_t0 = time.perf_counter()
        sup.kill_shard(victim)
        respawned = sup.wait_shard_respawn(victim, spawn_count, timeout=60)
        respawn_seconds = time.perf_counter() - kill_t0
        time.sleep(max(duration_seconds - kill_after_seconds
                       - respawn_seconds, 1.0))
        stop.set()
        for t in threads:
            t.join()
    flat_errors = [e for per in errors for e in per]
    return {
        "shards": shards,
        "concurrency": concurrency,
        "killed_shard": victim,
        "requests_completed": sum(counts),
        "failed_requests": len(flat_errors),
        "zero_failures": not flat_errors,
        "errors_sample": flat_errors[:5],
        "respawned": respawned,
        "respawn_seconds": round(respawn_seconds, 3),
    }


# -- entry points --------------------------------------------------------------


def run_bench(shard_counts=DEFAULT_SHARD_COUNTS,
              specs: tuple[str, ...] = HOT_SPECS, generator: str = "frodo",
              steps: int = 1, concurrency: int = 8,
              requests_per_client: int = 20, repeats: int = 2,
              dedup_fingerprints: int = 6, root: str | None = None) -> dict:
    owned_tmp = None
    if root is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="bench-cluster-")
        root = owned_tmp.name
    try:
        scaling = bench_scaling(root, shard_counts, specs, generator, steps,
                                concurrency, requests_per_client,
                                repeats=repeats)
        sleep_curve = bench_sleep_curve(
            root, shard_counts, concurrency=concurrency,
            requests_per_client=max(requests_per_client // 2, 5))
        dedup = bench_dedup(root, shards=min(max(shard_counts), 4),
                            fingerprints=dedup_fingerprints,
                            generator=generator, steps=steps)
        kill = bench_kill_recovery(root, shards=min(max(shard_counts), 4),
                                   specs=specs[:4], generator=generator,
                                   steps=steps,
                                   concurrency=max(concurrency // 2, 4))
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    import os
    return {
        "benchmark": "serve-cluster",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "shard_counts": list(shard_counts),
            "specs": list(specs),
            "generator": generator,
            "steps": steps,
            "concurrency": concurrency,
            "requests_per_client": requests_per_client,
        },
        "scaling": scaling,
        "sleep_curve": sleep_curve,
        "dedup": dedup,
        "kill_recovery": kill,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_cluster",
        description="sharded-serving benchmark "
                    "(BENCH_cluster.json trajectory)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer shards and requests")
    parser.add_argument("--output", default=None,
                        help="output JSON path "
                             "(default: <repo>/BENCH_cluster.json)")
    parser.add_argument("--generator", default="frodo")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--requests", type=int, default=20,
                        help="scaling-phase requests per client")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N repeats per shard count")
    args = parser.parse_args(argv)

    if args.quick:
        shard_counts = QUICK_SHARD_COUNTS
        concurrency = min(args.concurrency, 4)
        requests = min(args.requests, 6)
        repeats = 1
        dedup_fingerprints = 4
    else:
        shard_counts = DEFAULT_SHARD_COUNTS
        concurrency = args.concurrency
        requests = args.requests
        repeats = args.repeats
        dedup_fingerprints = 6

    result = run_bench(shard_counts=shard_counts, generator=args.generator,
                       concurrency=concurrency,
                       requests_per_client=requests, repeats=repeats,
                       dedup_fingerprints=dedup_fingerprints)
    result["quick"] = bool(args.quick)
    result["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")

    out_path = (Path(args.output) if args.output
                else Path(__file__).resolve().parents[3]
                / "BENCH_cluster.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    for row in result["scaling"]["rows"]:
        print(f"shards={row['shards']}: {row['throughput_rps']} req/s "
              f"(x{row['scaling_vs_1_shard']} vs 1 shard), "
              f"p95={row['latency']['p95_ms']}ms")
    print(f"hot throughput monotonic 1→4 (tol {MONOTONIC_TOLERANCE}): "
          f"{result['scaling']['monotonic_1_to_4']}")
    for row in result["sleep_curve"]["rows"]:
        print(f"sleep curve shards={row['shards']}: "
              f"{row['throughput_rps']} req/s "
              f"(ideal {row['ideal_rps']}, "
              f"x{row['scaling_vs_1_shard']} vs 1 shard)")
    dedup = result["dedup"]
    print(f"dedup: {dedup['cold_compiles']} cold compiles for "
          f"{dedup['distinct_fingerprints']} fingerprints "
          f"(exact={dedup['dedup_exact']}); after draining "
          f"{dedup['drained_shard']}: {dedup['resweep_new_compiles']} new "
          f"compiles (store-served={dedup['served_from_store_after_drain']})")
    kill = result["kill_recovery"]
    print(f"kill recovery: {kill['requests_completed']} requests through "
          f"SIGKILL of {kill['killed_shard']}, "
          f"{kill['failed_requests']} failed "
          f"(zero={kill['zero_failures']}), respawn "
          f"{kill['respawn_seconds']}s")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
