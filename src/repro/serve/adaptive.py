"""Tiered adaptive execution: obs-driven background promotion to native.

``backend="auto"`` has a JIT's ingredients — a cheap always-available
vector path, an expensive-but-fast native compile, and a cost model —
but before this module the choice was static.  Here it becomes a serving
tier, the standard inference-stack shape: every request is answered
immediately on the vector backend, a per-fingerprint **heat tracker**
accumulates how much work each program is actually serving, and once a
fingerprint is hot enough to pay for its compile, the ``.so`` is built
by a **background executor** off the request path (bounded concurrency;
a request never blocks on gcc).  The finished native VM is atomically
swapped into the warm worker VM cache
(:func:`repro.ir.interp.install_cached_vm` +
:func:`~repro.ir.interp.promote_fingerprint`), so the *next* request for
that fingerprint runs native.  A toolchain failure demotes the
fingerprint permanently — the vector VM remains the fallback and the
server keeps answering.

Heat and the promotion policy
-----------------------------

Heat is ``invocations × steps × batch`` with exponential decay
(``half_life_seconds``), so a burst that stops ages out instead of
promoting forever.  The promotion threshold is seeded from the cost
model (:mod:`repro.ir.cost`): each fingerprint's modeled per-step time
(static counts from :mod:`repro.ir.staticcount` priced by the
:data:`~repro.ir.cost.X86_GCC` profile, scaled by
:data:`VECTOR_OVERHEAD_FACTOR` for the Python vector backend's dispatch
overhead) converts heat into *estimated vector wall time served*; the
fingerprint promotes when that passes ``payoff_ratio`` times its
estimated compile cost (:data:`COMPILE_BASE_NS` +
:data:`COMPILE_PER_STMT_NS` × statement count).  Big programs therefore
need proportionally more traffic before the compiler is spent on them —
exactly the "compile cost off the request path" contract SDF-style
embedded codegen assumes.  ``threshold_ms`` overrides the seeded value
with a fixed one (tests and the CI smoke use this to promote quickly).

One controller lives per serve worker process (module singleton,
installed by :func:`configure` at worker startup).  Workers do not share
heat — but they share the on-disk ``.so`` store, so the first worker to
promote pays gcc once and every other worker's promotion is a dlopen.

Promotion/demotion events are traced (``native.promote`` spans recorded
on a background trace) and shipped to the server on the next handled
request (``meta["adaptive_events"]``), where they feed the
``backend_promotions_total`` / ``backend_demotions_total`` counters and
the per-worker promotion-state gauge in ``/metrics``.
"""

from __future__ import annotations

import statistics
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs import tracing

#: Modeled-ns → estimated vector-backend wall-ns multiplier.  The cost
#: model prices compiled C at -O3; the numpy vector backend pays Python
#: and ufunc-dispatch overhead on top, measured at roughly this factor
#: across the zoo (BENCH_vm.json vector vs modeled).  This constant is
#: the *seed and fallback*: once a worker has seen enough traced
#: vector-backend ``vm.run`` spans, :func:`calibrate_from_spans` replaces
#: it with the measured median ratio for that worker's actual traffic.
VECTOR_OVERHEAD_FACTOR = 50.0

#: Traced vector ``vm.run`` samples required before the measured ratio
#: overrides :data:`VECTOR_OVERHEAD_FACTOR`.
CALIBRATION_MIN_SAMPLES = 4

#: Ratio samples retained per controller (sliding window).
CALIBRATION_MAX_SAMPLES = 256

#: Sanity clamp on the calibrated factor — a wildly skewed trace (paused
#: process, debugger attached) must not poison promotion thresholds.
CALIBRATION_FACTOR_BOUNDS = (1.0, 1000.0)

#: Estimated fixed cost of one native build (compiler spawn + front end).
COMPILE_BASE_NS = 2.5e8  # ~250 ms

#: Estimated marginal compile cost per IR statement.
COMPILE_PER_STMT_NS = 1.5e6  # ~1.5 ms

#: Minimum seconds between persisted-heat writes per fingerprint.  Heat
#: is a hint; flushing it on every request would turn the store into a
#: hot-path dependency.
HEAT_PUBLISH_INTERVAL = 1.0


@dataclass
class AdaptiveConfig:
    """Knobs of the adaptive tier (CLI: ``frodo serve --adaptive ...``)."""

    #: Promote once estimated vector wall time served crosses
    #: ``payoff_ratio`` × estimated compile cost.
    payoff_ratio: float = 1.0
    #: Fixed threshold in milliseconds of estimated vector wall time
    #: served; overrides the cost-seeded threshold when set.
    threshold_ms: float | None = None
    #: A fingerprint must be requested at least this many times before it
    #: is promotion-eligible, however hot one request made it.
    min_runs: int = 2
    #: Heat decay half-life — a fingerprint idle this long loses half
    #: its accumulated heat.
    half_life_seconds: float = 300.0
    #: Background compiles allowed in flight per worker.
    max_concurrent_compiles: int = 1
    #: LRU bound on tracked fingerprints (heat entries, not VMs).
    max_tracked: int = 512


class _Entry:
    """Heat and promotion state of one ``(fingerprint, fuse)``."""

    __slots__ = ("program_fp", "fuse", "state", "heat", "invocations",
                 "last_update", "step_ns", "compile_ns", "first_seen",
                 "promoted_at", "compile_seconds", "model_name",
                 "seeded", "last_publish")

    def __init__(self, program_fp: str, fuse: bool, model_name: str,
                 now: float):
        self.program_fp = program_fp
        self.fuse = fuse
        self.model_name = model_name
        self.state = "cold"  # cold -> compiling -> promoted | demoted
        self.heat = 0.0  # decayed steps × batch units
        self.invocations = 0
        self.last_update = now
        self.first_seen = now
        self.step_ns: float | None = None  # modeled per-step cost (lazy)
        self.compile_ns: float = 0.0
        self.promoted_at: float | None = None
        self.compile_seconds: float | None = None
        self.seeded = True  # flipped off when a heat store may hold history
        self.last_publish = float("-inf")


def modeled_step_ns(program) -> float:
    """Un-scaled cost-model estimate of one step's compiled time (ns).

    Static counts (:func:`repro.ir.staticcount.analyze_counts`) priced by
    the x86-gcc profile.  The estimate only has to *rank* programs and
    scale thresholds — the static counts' data-dependent approximations
    are fine here.
    """
    from repro.ir.cost import X86_GCC
    from repro.ir.staticcount import analyze_counts
    static = analyze_counts(program)
    return max(X86_GCC.modeled_time_ns(static.step), 1.0)


def estimate_step_ns(program, overhead_factor: float | None = None) -> float:
    """Estimate one vector-backend step's wall time (ns).

    ``overhead_factor`` defaults to the :data:`VECTOR_OVERHEAD_FACTOR`
    constant; a controller that has calibrated from measured spans passes
    its measured factor instead.
    """
    factor = VECTOR_OVERHEAD_FACTOR if overhead_factor is None \
        else overhead_factor
    return modeled_step_ns(program) * factor


def span_overhead_ratios(spans: list, modeled_ns: dict) -> list[float]:
    """Measured/modeled ratios from traced vector ``vm.run`` spans.

    ``modeled_ns`` maps a program name to its *un-scaled*
    :func:`modeled_step_ns`; spans for unknown programs, non-vector
    backends, or with unusable timing are skipped.
    """
    ratios = []
    for span in spans:
        if span.get("name") != "vm.run":
            continue
        attrs = span.get("attrs") or {}
        if attrs.get("backend") != "vector":
            continue
        steps = attrs.get("steps")
        wall = span.get("wall_seconds")
        modeled = modeled_ns.get(attrs.get("program"))
        if not isinstance(steps, int) or isinstance(steps, bool) \
                or steps < 1:
            continue
        if not isinstance(wall, (int, float)) or wall <= 0:
            continue
        if not modeled or modeled <= 0:
            continue
        ratios.append((wall * 1e9 / steps) / modeled)
    return ratios


def calibrate_from_spans(spans: list, modeled_ns: dict,
                         min_samples: int = CALIBRATION_MIN_SAMPLES) -> float:
    """Overhead factor from recorded ``vm.run`` spans.

    The median measured/modeled ratio across vector-backend runs, clamped
    to :data:`CALIBRATION_FACTOR_BOUNDS`; falls back to the
    :data:`VECTOR_OVERHEAD_FACTOR` constant when fewer than
    ``min_samples`` usable spans exist (e.g. tracing disabled).
    """
    ratios = span_overhead_ratios(spans, modeled_ns)
    if len(ratios) < min_samples:
        return VECTOR_OVERHEAD_FACTOR
    lo, hi = CALIBRATION_FACTOR_BOUNDS
    return min(max(statistics.median(ratios), lo), hi)


def estimate_compile_ns(program) -> float:
    """Estimated cost of building this program's ``.so`` once."""
    statements = sum(1 for _ in program.walk())
    return COMPILE_BASE_NS + COMPILE_PER_STMT_NS * statements


class AdaptiveController:
    """Per-worker heat tracking + background native promotion.

    Thread-safe: ``observe`` is called from the worker's request thread,
    completions land on executor threads, and ``drain_events`` may run
    concurrently with both.
    """

    def __init__(self, config: AdaptiveConfig, so_cache_dir=None,
                 heat_store=None, native_cache=None):
        self.config = config
        self.so_cache_dir = so_cache_dir
        #: Optional :class:`repro.serve.store.HeatStore` — persists heat
        #: next to the artifact store so a shard inheriting a slice after
        #: a re-hash starts from observed heat, not from zero.
        self.heat_store = heat_store
        #: Optional :class:`repro.serve.store.SharedArtifactCache` — lets
        #: a promotion fetch a fleet-built ``.so`` instead of running gcc,
        #: and publish its own build for the other shards.
        self.native_cache = native_cache
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, bool], _Entry]" = OrderedDict()
        self._events: list[dict] = []
        self._futures: list[Future] = []
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        #: Measured overhead factor; None until enough spans calibrate it.
        self.overhead_factor: float | None = None
        self._ratio_samples: list[float] = []

    def _factor(self) -> float:
        return VECTOR_OVERHEAD_FACTOR if self.overhead_factor is None \
            else self.overhead_factor

    def record_vm_run_spans(self, spans: list) -> None:
        """Feed traced ``vm.run`` spans into overhead calibration.

        Called with each handled request's exported spans (empty for
        untraced requests).  Once :data:`CALIBRATION_MIN_SAMPLES` usable
        vector-run samples accumulate, the measured median replaces the
        :data:`VECTOR_OVERHEAD_FACTOR` seed for promotion thresholds.
        """
        if not spans:
            return
        with self._lock:
            modeled = {e.model_name: e.step_ns
                       for e in self._entries.values()
                       if e.step_ns is not None}
        if not modeled:
            return
        ratios = span_overhead_ratios(spans, modeled)
        if not ratios:
            return
        with self._lock:
            self._ratio_samples.extend(ratios)
            del self._ratio_samples[:-CALIBRATION_MAX_SAMPLES]
            if len(self._ratio_samples) >= CALIBRATION_MIN_SAMPLES:
                lo, hi = CALIBRATION_FACTOR_BOUNDS
                self.overhead_factor = min(
                    max(statistics.median(self._ratio_samples), lo), hi)

    # -- request path ------------------------------------------------------

    def observe(self, program, steps: int, batch: int = 1,
                fuse: bool = True, model_name: str = "?") -> dict:
        """Record one ``backend="auto"`` request; maybe start a promotion.

        Returns a small status dict for the response meta:
        ``{"state": ..., "heat": ...}``.  Never blocks on compilation —
        the heaviest thing on this path is the one-time cost-model
        estimate for a fingerprint's first sighting.
        """
        from repro.ir.vectorize import fingerprint
        fp = fingerprint(program)
        now = time.monotonic()
        promote_entry = None
        with self._lock:
            key = (fp, bool(fuse))
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(fp, bool(fuse), model_name, now)
                # This thread owns the (single) persisted-heat lookup.
                entry.seeded = self.heat_store is None
                need_seed = not entry.seeded
                self._entries[key] = entry
                while len(self._entries) > self.config.max_tracked:
                    evicted_key, evicted = self._entries.popitem(last=False)
                    if evicted.state == "compiling":
                        # Never forget an in-flight compile's bookkeeping.
                        self._entries[evicted_key] = evicted
                        self._entries.move_to_end(evicted_key, last=True)
                        break
            else:
                self._entries.move_to_end(key)
                need_seed = False
            dt = now - entry.last_update
            if dt > 0 and self.config.half_life_seconds > 0:
                entry.heat *= 0.5 ** (dt / self.config.half_life_seconds)
            entry.last_update = now
            entry.heat += max(steps, 1) * max(batch, 1)
            entry.invocations += 1
        if need_seed:
            self._seed_heat(entry)
        with self._lock:
            should_estimate = (entry.state == "cold"
                               and entry.step_ns is None
                               and entry.invocations >= self.config.min_runs)
        if should_estimate:
            # Stored un-scaled; the overhead factor is applied at the
            # threshold check so later calibration reaches old entries.
            step_ns = modeled_step_ns(program)
            compile_ns = estimate_compile_ns(program)
            with self._lock:
                entry.step_ns = step_ns
                entry.compile_ns = compile_ns
        with self._lock:
            if (entry.state == "cold" and entry.step_ns is not None
                    and entry.invocations >= self.config.min_runs
                    and entry.heat * entry.step_ns * self._factor()
                    >= self._threshold_ns(entry)):
                entry.state = "compiling"
                promote_entry = entry
            status = {"state": entry.state,
                      "heat": round(entry.heat, 3)}
        if promote_entry is not None:
            self._submit(promote_entry, program)
        self._maybe_publish_heat(entry)
        return status

    def _threshold_ns(self, entry: _Entry) -> float:
        if self.config.threshold_ms is not None:
            return self.config.threshold_ms * 1e6
        return self.config.payoff_ratio * entry.compile_ns

    # -- persisted heat ----------------------------------------------------

    def _seed_heat(self, entry: _Entry) -> None:
        """Merge a persisted heat record into a freshly created entry.

        Runs once per fingerprint, off the lock (the store hop may hit
        the network).  The stored heat is decayed by *wall-clock* age —
        the record's ``updated_at`` is ``time.time()`` from whichever
        shard last owned the slice, possibly a different process.
        """
        record = self.heat_store.load(entry.program_fp, entry.fuse) \
            if self.heat_store is not None else None
        with self._lock:
            if entry.seeded:
                return
            entry.seeded = True
            if not isinstance(record, dict):
                return
            heat = record.get("heat")
            if isinstance(heat, (int, float)) and not isinstance(heat, bool) \
                    and heat > 0:
                age = 0.0
                updated_at = record.get("updated_at")
                if isinstance(updated_at, (int, float)) \
                        and not isinstance(updated_at, bool):
                    age = max(time.time() - updated_at, 0.0)
                if self.config.half_life_seconds > 0:
                    heat *= 0.5 ** (age / self.config.half_life_seconds)
                entry.heat += float(heat)
            invocations = record.get("invocations")
            if isinstance(invocations, int) \
                    and not isinstance(invocations, bool) and invocations > 0:
                entry.invocations = max(entry.invocations, invocations)

    def _maybe_publish_heat(self, entry: _Entry, force: bool = False) -> None:
        """Persist the entry's heat, throttled per fingerprint."""
        if self.heat_store is None:
            return
        now = time.monotonic()
        with self._lock:
            if not force and now - entry.last_publish < HEAT_PUBLISH_INTERVAL:
                return
            entry.last_publish = now
            payload = {
                "heat": round(entry.heat, 3),
                "updated_at": time.time(),
                "invocations": entry.invocations,
                "model": entry.model_name,
            }
            fp, fuse = entry.program_fp, entry.fuse
        self.heat_store.save(fp, fuse, payload)

    # -- background promotion ----------------------------------------------

    def _submit(self, entry: _Entry, program) -> None:
        with self._lock:
            if self._closed:
                entry.state = "cold"
                return
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(self.config.max_concurrent_compiles, 1),
                    thread_name_prefix="repro-promote")
            future = self._executor.submit(self._promote, entry, program)
            self._futures.append(future)
            self._futures = [f for f in self._futures if not f.done()]

    def _promote(self, entry: _Entry, program) -> None:
        """Background job: build the ``.so``, swap the VM cache, promote.

        Runs on an executor thread — a request that arrives while this
        compiles is still served by the vector VM.
        """
        from repro.errors import NativeToolchainError
        from repro.ir.interp import (VirtualMachine, install_cached_vm,
                                     promote_fingerprint)
        root = tracing.start_trace(
            "native.promote", model=entry.model_name,
            fingerprint=entry.program_fp[:12], fuse=entry.fuse)
        t0 = time.perf_counter()
        memo = f"promote:{entry.program_fp}:{int(entry.fuse)}"
        cache = self.native_cache
        try:
            with root:
                if cache is not None and hasattr(cache, "fetch_native"):
                    # A fleet peer may have paid gcc already — pull its
                    # .so into the local overlay so the build is a dlopen.
                    root.set(native_store=cache.fetch_native(
                        program, entry.fuse, memo))
                vm = VirtualMachine(program, backend="native",
                                    so_cache_dir=self.so_cache_dir,
                                    fuse=entry.fuse)
                if cache is not None and hasattr(cache, "publish_native"):
                    cache.publish_native(program, entry.fuse, memo)
                install_cached_vm(program, vm,
                                  so_cache_dir=self.so_cache_dir)
                promoted = promote_fingerprint(
                    entry.program_fp, entry.fuse,
                    so_cache_dir=self.so_cache_dir)
                root.set(outcome="promoted" if promoted else "demoted")
        except NativeToolchainError as exc:
            self._finish(entry, "demoted", t0, root, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — demote, never crash worker
            self._finish(entry, "demoted", t0, root,
                         f"{type(exc).__name__}: {exc}")
            return
        self._finish(entry, "promoted" if promoted else "demoted", t0, root,
                     None)

    def _finish(self, entry: _Entry, state: str, t0: float, root,
                error: str | None) -> None:
        elapsed = time.perf_counter() - t0
        if state == "demoted":
            from repro.ir.interp import demote_fingerprint
            demote_fingerprint(entry.program_fp, entry.fuse)
        event = {
            "event": state,
            "model": entry.model_name,
            "fingerprint": entry.program_fp[:12],
            "fuse": entry.fuse,
            "compile_seconds": round(elapsed, 6),
        }
        if error is not None:
            event["error"] = error
        spans = root.export()
        if spans:
            event["spans"] = spans
        with self._lock:
            entry.state = state
            entry.compile_seconds = elapsed
            if state == "promoted":
                entry.promoted_at = time.monotonic()
            self._events.append(event)
        # State changes are worth a flush regardless of the throttle —
        # an inheriting shard should see the record promptly.
        self._maybe_publish_heat(entry, force=True)

    # -- reporting ---------------------------------------------------------

    def drain_events(self) -> list[dict]:
        """Completed promotion/demotion events since the last drain."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def state_counts(self) -> dict[str, int]:
        """Current fingerprint-state distribution (the ``/metrics`` gauge)."""
        counts = {"cold": 0, "compiling": 0, "promoted": 0, "demoted": 0}
        with self._lock:
            for entry in self._entries.values():
                counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def state_of(self, program, fuse: bool = True) -> str | None:
        from repro.ir.vectorize import fingerprint
        with self._lock:
            entry = self._entries.get((fingerprint(program), bool(fuse)))
            return entry.state if entry is not None else None

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until all submitted promotions finish (tests, drain)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                pending = [f for f in self._futures if not f.done()]
            if not pending:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


# -- per-process singleton -----------------------------------------------------

_CONTROLLER: AdaptiveController | None = None


def configure(config: AdaptiveConfig | None, so_cache_dir=None,
              heat_store=None,
              native_cache=None) -> AdaptiveController | None:
    """Install (or clear, with ``config=None``) this process's controller.

    Called once per worker process at startup (and by the inline
    ``workers=0`` pool).  Reconfiguring closes the previous controller.
    ``heat_store`` / ``native_cache`` wire the controller into the shared
    artifact store (see :mod:`repro.serve.store`) when serving as part of
    a cluster — both optional, both fail-soft.
    """
    global _CONTROLLER
    if _CONTROLLER is not None:
        _CONTROLLER.close()
    _CONTROLLER = (AdaptiveController(config, so_cache_dir,
                                      heat_store=heat_store,
                                      native_cache=native_cache)
                   if config is not None else None)
    return _CONTROLLER


def controller() -> AdaptiveController | None:
    """The process-wide controller, or None when adaptive is disabled."""
    return _CONTROLLER
