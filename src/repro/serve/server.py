"""Asyncio front-end for the compile-and-execute service.

One TCP listener speaks both transports:

* **NDJSON** (native): each line is a request, each reply is a line, in
  order on the same connection (see :mod:`repro.serve.protocol`);
* **HTTP shim**: if the first line of a connection looks like an HTTP
  request, the server answers exactly one of ``GET /healthz``,
  ``GET /metrics`` or ``POST /rpc`` (body = one protocol request object)
  and closes — enough for ``curl`` and load-balancer health checks
  without an HTTP dependency.

The event loop never executes model work itself: requests are handed to
the :class:`~repro.serve.pool.WorkerPool` via the default thread
executor, so slow compiles stall neither the accept loop nor other
connections.  ``metrics``, ``ping`` and ``shutdown`` are answered by the
front-end directly — health checks must not consume workers.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from dataclasses import dataclass, field

from repro.obs import tracing
from repro.obs.export import span_tree, write_jsonl
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import PoolConfig, WorkerPool
from repro.serve.protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION,
                                  ServeError, decode_request, encode,
                                  error_response, ok_response)

_HTTP_METHODS = (b"GET ", b"POST ", b"PUT ", b"DELETE ", b"HEAD ")


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read back from server.port
    workers: int = 2
    cache_dir: str | None = None
    timeout_seconds: float = 60.0
    max_pending: int = 16
    #: Dynamic micro-batching: concurrent ``run`` requests sharing
    #: (model, generator, backend, steps) coalesce into one ``run_batch``
    #: worker call of up to ``max_batch`` instances, waiting at most
    #: ``max_batch_wait_ms`` for companions.  ``max_batch=1`` disables
    #: coalescing entirely.
    max_batch: int = 8
    max_batch_wait_ms: float = 2.0
    #: Tiered adaptive execution (see :mod:`repro.serve.adaptive` and
    #: docs/adaptive.md): serve ``backend="auto"`` on the vector tier
    #: immediately and promote hot fingerprints to native via background
    #: compilation.  Off by default — promotion changes the *counts*
    #: reported for promoted fingerprints (native counts are analytic),
    #: so callers opt in per server.
    adaptive: bool = False
    #: Fixed promotion threshold in estimated vector-work milliseconds;
    #: None seeds the threshold from the cost model per fingerprint.
    promote_threshold_ms: float | None = None
    #: Requests a fingerprint needs before it is promotion-eligible.
    promote_min_runs: int = 2
    #: Background native compiles allowed in flight per worker.
    promote_compiles: int = 1
    #: Warm per-worker VM cache bound (LRU evicted beyond); None keeps
    #: the library default.
    vm_cache_max: int | None = None
    allow_debug: bool = False
    #: Whether the ``shutdown`` op is honoured (CI smoke and tests use it;
    #: production deployments may prefer signals only).
    allow_shutdown: bool = True
    #: Shard identity (cluster mode): stamped into response meta, the
    #: ``shard`` metrics label, and ``ping`` results.  None for a plain
    #: standalone server — whose behavior is then unchanged.
    shard: str | None = None
    #: ``host:port`` of a shared artifact store (see
    #: :mod:`repro.serve.store`); workers read through and publish to it.
    store: str | None = None
    #: When set, every request is traced (not just ``trace: true`` ones)
    #: and all finished spans are appended to this JSON-lines file.
    trace_log: str | None = None
    extra: dict = field(default_factory=dict)

    def pool_config(self) -> PoolConfig:
        adaptive_cfg = None
        if self.adaptive:
            from repro.serve.adaptive import AdaptiveConfig
            adaptive_cfg = AdaptiveConfig(
                threshold_ms=self.promote_threshold_ms,
                min_runs=self.promote_min_runs,
                max_concurrent_compiles=self.promote_compiles)
        return PoolConfig(workers=self.workers, cache_dir=self.cache_dir,
                          timeout_seconds=self.timeout_seconds,
                          max_pending=self.max_pending,
                          allow_debug=self.allow_debug,
                          adaptive=adaptive_cfg,
                          vm_cache_max=self.vm_cache_max,
                          store=self.store, shard=self.shard)


class ReproServer:
    """One service instance: pool + metrics + TCP front-end."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = MetricsRegistry(shard=config.shard)
        self.pool: WorkerPool | None = None
        self.batcher: "BatchQueue | None" = None
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start_pool(self) -> None:
        """Spawn and warm the worker pool (synchronous, fork-safe to call
        from the main thread before the event loop starts)."""
        if self.pool is None:
            self.pool = WorkerPool(self.config.pool_config(), self.metrics)
            self.pool.ping_all()

    async def start(self) -> None:
        self.start_pool()
        if self.config.max_batch > 1 and self.batcher is None:
            from repro.serve.batching import BatchQueue
            assert self.pool is not None
            self.batcher = BatchQueue(
                self.pool.execute, self.metrics,
                max_batch=self.config.max_batch,
                max_wait_ms=self.config.max_batch_wait_ms)
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.close)
        self._stopped.set()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, req: dict) -> dict:
        """Route one decoded request to its answer (always returns)."""
        request_id = req.get("id")
        op = req.get("op")
        loop = asyncio.get_running_loop()
        self.metrics.adjust_in_flight(1)
        trace_id = tracing.new_id(16)
        record = bool(req.get("trace")) or self.config.trace_log is not None
        root = (tracing.start_trace("request", trace_id=trace_id, op=op)
                if record else tracing.NULL_SPAN)
        if op not in ("ping", "metrics", "shutdown"):
            # Every worker-bound request carries its trace id — recording
            # or not — so a worker killed mid-request can always be
            # attributed (see repro.serve.pool).
            req["_trace"] = {"trace_id": trace_id,
                             "parent_id": root.span_id, "record": record}
        t0 = loop.time()
        finished = False
        try:
            with root:
                result, meta = await self._route(op, req)
            meta = dict(meta)
            meta["trace_id"] = trace_id
            spans = self._finish_trace(root, meta.pop("spans", None))
            finished = True
            if req.get("trace") and spans:
                # Additive: a forwarded response may already carry the
                # shard's trace forest — graft the local (router) spans
                # after it instead of clobbering it.  Plain servers never
                # see a pre-populated "trace", so their output is
                # unchanged.
                result = dict(result)
                result["trace"] = (list(result.get("trace") or ())
                                   + span_tree(spans))
            self._record_cache_meta(meta)
            self.metrics.record_request(op, "ok", loop.time() - t0)
            return ok_response(request_id, result, meta)
        except ServeError as exc:
            if not finished:
                self._finish_trace(root, None)
            self.metrics.record_request(op or "invalid", exc.error_type,
                                        loop.time() - t0)
            return error_response(request_id, exc, {"trace_id": trace_id})
        except Exception as exc:  # noqa: BLE001 — connection must survive
            if not finished:
                self._finish_trace(root, None)
            self.metrics.record_request(op or "invalid", "internal",
                                        loop.time() - t0)
            return error_response(request_id, ServeError(
                "internal", f"{type(exc).__name__}: {exc}"),
                {"trace_id": trace_id})
        finally:
            self.metrics.adjust_in_flight(-1)

    async def _route(self, op: str, req: dict) -> tuple[dict, dict]:
        loop = asyncio.get_running_loop()
        if self._stopping:
            raise ServeError("shutting_down", "server is draining")
        if op == "ping":
            result = {"pong": True, "role": "frontend",
                      "protocol_version": PROTOCOL_VERSION}
            if self.config.shard is not None:
                result["shard"] = self.config.shard
            return result, {}
        if op == "metrics":
            return self._metrics_result(req), {}
        if op == "shutdown":
            if not self.config.allow_shutdown:
                raise ServeError("bad_request",
                                 "shutdown op is disabled on this server")
            loop.call_soon(lambda: asyncio.ensure_future(self.stop()))
            return {"stopping": True}, {}
        if op == "run" and self.batcher is not None:
            # Coalescible run requests ride the micro-batching queue;
            # the batcher forwards anything it can't merge untouched.
            return await self.batcher.submit(req)
        assert self.pool is not None
        return await loop.run_in_executor(None, self.pool.execute, req)

    def _finish_trace(self, root, extra_spans) -> list[dict]:
        """Close out one request's trace: graft the spans shipped back in
        ``meta["spans"]`` (queue, pool, worker) onto the locally collected
        ones, feed every span into the phase-latency histograms, and
        append the flat list to the trace log when one is configured."""
        base = root.export()
        if not base:
            return []
        spans = tracing.merge_spans(base, extra_spans or [], root.span_id)
        for s in spans:
            self.metrics.record_phase(s["name"], s["wall_seconds"])
        if self.config.trace_log:
            try:
                write_jsonl(self.config.trace_log, spans, append=True)
            except OSError as exc:
                logging.getLogger("repro.serve.server").warning(
                    "cannot append to trace log %s: %s",
                    self.config.trace_log, exc)
        return spans

    def _record_cache_meta(self, meta: dict) -> None:
        for cache, key in (("artifact", "artifact_cache"),
                           ("vm", "vm_cache")):
            event = meta.get(key)
            if event in ("hit", "miss"):
                self.metrics.record_cache(cache, event)
        fusion = meta.get("fusion")
        if isinstance(fusion, dict) and meta.get("vm_cache") != "hit":
            # Only freshly built VMs did fusion work; a warm-cache hit
            # would double-count the same program's stats.
            self.metrics.record_fusion(fusion)
        worker_pid = meta.get("worker_pid", 0)
        for event in meta.get("adaptive_events", ()):
            if isinstance(event, dict):
                self.metrics.record_adaptive_event(event.get("event", ""))
        states = meta.get("adaptive_states")
        if states is not None:
            self.metrics.record_adaptive_states(worker_pid, states)
        evictions = meta.get("vm_cache_evictions")
        if isinstance(evictions, int):
            self.metrics.record_vm_evictions(worker_pid, evictions)

    def _metrics_result(self, req: dict) -> dict:
        snapshot = self.metrics.snapshot()
        result = {"snapshot": snapshot}
        if req.get("render", True):
            result["text"] = self.metrics.render_text()
        return result

    async def _metrics_text(self) -> str:
        """Text for ``GET /metrics`` (the router overrides this with a
        fleet-merged view)."""
        return self.metrics.render_text()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            first = await self._read_line(reader)
            if first is None:
                return
            if any(first.startswith(m) for m in _HTTP_METHODS):
                self.metrics.record_connection("http")
                await self._handle_http(first, reader, writer)
                return
            self.metrics.record_connection("ndjson")
            line: bytes | None = first
            while line is not None:
                if line.strip():
                    try:
                        req = decode_request(line)
                    except ServeError as exc:
                        self.metrics.record_request("invalid", exc.error_type,
                                                    0.0)
                        writer.write(encode(error_response(None, exc)))
                    else:
                        writer.write(encode(await self._dispatch(req)))
                    await writer.drain()
                line = await self._read_line(reader)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> bytes | None:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return None  # oversized line: drop the connection
        return line if line else None

    # -- HTTP shim ---------------------------------------------------------

    async def _handle_http(self, request_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            method, path, _ = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._http_reply(writer, 400, "text/plain",
                                   "malformed request line\n")
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"", b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if method == "GET" and path == "/healthz":
            await self._http_reply(writer, 200, "text/plain", "ok\n")
        elif method == "GET" and path == "/metrics":
            await self._http_reply(writer, 200, "text/plain",
                                   await self._metrics_text())
        elif method == "POST" and path in ("/rpc", "/"):
            if content_length <= 0 or content_length > MAX_LINE_BYTES:
                await self._http_reply(writer, 400, "text/plain",
                                       "missing or oversized body\n")
                return
            body = await reader.readexactly(content_length)
            try:
                req = decode_request(body)
            except ServeError as exc:
                resp = error_response(None, exc)
            else:
                resp = await self._dispatch(req)
            await self._http_reply(writer, 200, "application/json",
                                   encode(resp).decode())
        else:
            await self._http_reply(writer, 404, "text/plain",
                                   f"no route for {method} {path}\n")

    @staticmethod
    async def _http_reply(writer: asyncio.StreamWriter, status: int,
                          content_type: str, body: str) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error")
        payload = body.encode()
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n".encode() + payload)
        await writer.drain()


async def run_server(config: ServeConfig,
                     ready: "threading.Event | None" = None,
                     announce=None) -> None:
    """Start a server and block until it stops (used by CLI and tests)."""
    server = ReproServer(config)
    await server.start()
    if announce is not None:
        announce(server)
    if ready is not None:
        ready.set()
    try:
        await server.wait_stopped()
    finally:
        await server.stop()


class ServerThread:
    """Run a :class:`ReproServer` on a background thread (tests, bench).

    The worker pool is forked from the *calling* thread before the event
    loop spins up, which keeps fork away from loop internals; ``start()``
    returns the bound port.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.server: ReproServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None

    def start(self, timeout: float = 30.0) -> int:
        self.server = ReproServer(self.config)
        self.server.start_pool()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        assert self.server._server is not None
        return self.server.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        assert self.server is not None
        await self.server.start()
        self._ready.set()
        await self.server.wait_stopped()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self.server is None:
            return
        if self._thread is not None and self._thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                 self._loop)
            except RuntimeError:
                pass  # loop already closed (e.g. a shutdown op beat us)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
