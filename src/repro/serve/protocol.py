"""Wire protocol for the ``repro.serve`` compile-and-execute service.

The native transport is **line-delimited JSON over TCP**: each request is
one JSON object on one line, each response is one JSON object on one line,
in order, on the same connection.  A minimal HTTP shim (see
:mod:`repro.serve.server`) wraps the same objects for ``curl``-style
access.

Request shape::

    {"id": 7, "op": "run", "model": "AudioProcess",
     "generator": "frodo", "backend": "auto", "steps": 3, "seed": 0}

Response shape::

    {"id": 7, "ok": true, "result": {...}, "meta": {...}}
    {"id": 7, "ok": false, "error": {"type": "unknown_model",
                                     "message": "..."}}

``meta`` carries observability breadcrumbs (worker pid, cache hit/miss
flags, service time) that the server folds into its metrics registry.

The error taxonomy is closed — every failure a client can see maps to one
of :data:`ERROR_TYPES` — so clients can switch on ``error.type`` without
parsing messages.
"""

from __future__ import annotations

import json
from typing import Any

#: Every operation the service accepts.  ``sleep`` is a debug op (gated by
#: the server's ``allow_debug`` switch) used by tests and the CI smoke job
#: to exercise timeout handling deterministically.  ``run_batch``
#: evaluates many independent instances of one (model, generator,
#: backend, steps) in a single batched VM call — the same op the server's
#: coalescer synthesizes from concurrent ``run`` requests.
OPS = ("ping", "compile", "run", "run_batch", "ranges", "report", "metrics",
       "sleep", "shutdown")

#: Closed error taxonomy (see docs/serving.md for the contract of each).
ERROR_TYPES = (
    "bad_request",      # malformed JSON, unknown op, invalid field value
    "unknown_model",    # model name not in the zoo and no payload given
    "unknown_generator",  # generator name not registered
    "invalid_model",    # uploaded payload failed to parse or analyze
    "native_unavailable",  # backend="native" but no C toolchain / build failed
    "timeout",          # request exceeded the per-request deadline
    "busy",             # load shed: all workers busy and backlog full
    "worker_crash",     # worker died mid-request (after one retry)
    "shutting_down",    # server is draining; retry against another replica
    "internal",         # unexpected server-side failure
)

#: Wire-protocol revision, echoed by ``ping``.
#: v2: ``run_batch`` op, ``coalesce`` flag on ``run``, batching knobs.
#: v3: ``fuse`` flag (default true) on ``compile``/``run``/``run_batch``/
#: ``report`` — toggles the IR-level loop-fusion pass; fusion stats are
#: reported in results and the artifact cache keys on the flag.
#: v4: tiered adaptive execution (additive): ``run``/``run_batch``
#: results carry ``backend_effective`` (the tier that actually executed,
#: which for ``backend="auto"`` on an adaptive server may be
#: ``"native"`` after background promotion); /metrics gains
#: ``backend_promotions_total``/``backend_demotions_total``/
#: ``vm_cache_evictions_total`` and the ``adaptive_state`` gauge.
#: v3 clients are unaffected — no request field changed meaning.
#: v5: sharded serving (additive): ``ping`` against a cluster router
#: reports ``role: "router"`` plus its shard roster; shard-handled
#: responses carry ``meta.shard``; /metrics rows gain a ``shard`` label
#: and the router serves a fleet-merged view; ``metrics`` snapshots may
#: include ``router_events_total``.  v4 clients are unaffected — every
#: new field is additive and a single plain server emits none of them.
PROTOCOL_VERSION = 5

MAX_LINE_BYTES = 32 * 1024 * 1024  # uploaded .slx payloads are base64 lines


class ServeError(Exception):
    """A typed, client-visible failure.

    Raised anywhere between request decode and handler completion; the
    server serializes it as ``{"ok": false, "error": {...}}`` instead of
    tearing down the connection.
    """

    def __init__(self, error_type: str, message: str):
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown error type {error_type!r}")
        super().__init__(message)
        self.error_type = error_type
        self.message = message

    def to_wire(self) -> dict:
        return {"type": self.error_type, "message": self.message}


def jsonable(value: Any) -> Any:
    """Recursively convert handler results to JSON-encodable values.

    numpy arrays become nested lists; complex values become
    ``{"re": ..., "im": ...}`` objects (JSON has no complex literal);
    numpy scalars collapse to Python scalars.
    """
    import numpy as np
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return jsonable(value.tolist())
    if isinstance(value, (complex, np.complexfloating)):
        return {"re": float(value.real), "im": float(value.imag)}
    if isinstance(value, np.generic):
        return value.item()
    return value


def encode(obj: dict) -> bytes:
    """Serialize one protocol object to its wire line."""
    return (json.dumps(jsonable(obj), separators=(",", ":")) + "\n").encode()


def decode_request(line: bytes) -> dict:
    """Parse one request line; raise :class:`ServeError` on malformed input."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError("bad_request", f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ServeError("bad_request", "request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ServeError(
            "bad_request", f"unknown op {op!r}; expected one of {list(OPS)}")
    return obj


def ok_response(request_id: Any, result: dict, meta: dict | None = None) -> dict:
    resp: dict = {"id": request_id, "ok": True, "result": result}
    if meta:
        resp["meta"] = meta
    return resp


def error_response(request_id: Any, error: ServeError,
                   meta: dict | None = None) -> dict:
    resp: dict = {"id": request_id, "ok": False, "error": error.to_wire()}
    if meta:
        resp["meta"] = meta
    return resp
