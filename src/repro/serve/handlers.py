"""Request execution for the serve subsystem.

Pure functions from a decoded request dict to a result dict.  The same
code runs in two places:

* inside each :mod:`repro.serve.pool` worker process (the production
  path — one request at a time per worker, private warm VM cache);
* inline in the server process when the pool is disabled
  (``workers=0``, used by unit tests and debugging).

Handlers never touch sockets or asyncio; typed failures are raised as
:class:`~repro.serve.protocol.ServeError` and everything else is the
caller's ``internal`` error.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.obs import tracing
from repro.serve.cache import (Artifact, ArtifactCache, artifact_key,
                               model_fingerprint)
from repro.serve.protocol import ServeError

#: Upper bound on ``steps`` for a single run request — a service-side
#: guardrail so one request cannot monopolize a worker for minutes.
MAX_STEPS = 100_000

#: Upper bound on instances in one ``run_batch`` request (same guardrail:
#: a batch occupies one worker for its whole duration).
MAX_BATCH_INSTANCES = 256


# -- model resolution ----------------------------------------------------------


def _known_model_names() -> list[str]:
    from repro.zoo import EXTENDED_MODELS, MODELS
    return [*MODELS, *EXTENDED_MODELS, "Motivating"]


def resolve_model(req: dict):
    """Build the request's model from a zoo name or an uploaded payload.

    Returns ``(model, fingerprint)``.  Payloads are base64-encoded
    ``.slx`` (zip container) or ``.mdl`` (text) bytes with
    ``model_format`` naming which.
    """
    payload = req.get("model_payload")
    if payload is not None:
        fmt = req.get("model_format", "slx")
        if fmt not in ("slx", "mdl"):
            raise ServeError("bad_request",
                             f"model_format must be 'slx' or 'mdl', got {fmt!r}")
        try:
            blob = base64.b64decode(payload, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise ServeError("invalid_model",
                             f"model_payload is not valid base64: {exc}")
        from repro.model.mdl import load_mdl
        from repro.model.slx import load_slx
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            path = Path(tmp) / f"upload.{fmt}"
            path.write_bytes(blob)
            try:
                model = load_mdl(path) if fmt == "mdl" else load_slx(path)
            except ReproError as exc:
                raise ServeError("invalid_model", str(exc))
        return model, model_fingerprint(model)

    name = req.get("model")
    if isinstance(name, str):
        from repro.corpus import is_corpus_spec
        if is_corpus_spec(name):
            from repro.corpus import build_corpus_model
            try:
                model = build_corpus_model(name)
            except ReproError as exc:
                raise ServeError("invalid_model", str(exc))
            return model, model_fingerprint(model)
    if not isinstance(name, str) or not name:
        raise ServeError("bad_request",
                         "request needs a 'model' name or a 'model_payload'")
    from repro.zoo import build_model
    try:
        model = build_model(name)
    except KeyError:
        from repro.corpus import corpus_spec_help
        known = ", ".join(_known_model_names())
        raise ServeError("unknown_model",
                         f"unknown model {name!r}; known zoo models: {known}; "
                         f"corpus specs also accepted: {corpus_spec_help()}")
    return model, model_fingerprint(model)


def _generator_name(req: dict) -> str:
    from repro.codegen import ALL_GENERATORS, FRODO_VARIANTS
    name = req.get("generator", "frodo")
    if name not in ALL_GENERATORS and name not in FRODO_VARIANTS:
        known = ", ".join([*ALL_GENERATORS, *FRODO_VARIANTS])
        raise ServeError("unknown_generator",
                         f"unknown generator {name!r}; known: {known}")
    return name


def _backend_name(req: dict) -> str:
    from repro.ir.interp import BACKENDS
    backend = req.get("backend", "auto")
    if backend not in BACKENDS:
        raise ServeError(
            "bad_request",
            f"unknown backend {backend!r}; expected one of {list(BACKENDS)}")
    return backend


def _fuse_flag(req: dict) -> bool:
    """The request's ``fuse`` switch (default on) for the IR-level
    loop-fusion pass (:mod:`repro.ir.fuse`)."""
    value = req.get("fuse", True)
    if not isinstance(value, bool):
        raise ServeError("bad_request",
                         f"fuse must be a boolean, got {value!r}")
    return value


def _native_vm(program, backend: str, ctx: "HandlerContext",
               fuse: bool = True, sync_key: str | None = None):
    """``cached_vm`` with native-backend wiring: the ``.so`` store lives in
    the artifact cache, and toolchain failures become the typed
    ``native_unavailable`` error instead of an internal one (explicit
    ``backend="native"`` never silently falls back — benchmark numbers
    must not lie).  ``backend="auto"`` may resolve to a *native* VM when
    the program's fingerprint was promoted by the adaptive tier (see
    :mod:`repro.serve.adaptive`); callers report ``vm.backend`` as the
    effective backend.

    With a store-backed cache (:class:`repro.serve.store.SharedArtifactCache`)
    and ``backend="native"``, the shared ``.so`` store is consulted before
    building (another shard's compile becomes a download + dlopen) and a
    locally built library is published after — the fleet pays gcc once
    per distinct program.  ``sync_key`` memoizes that exchange per
    artifact, keeping warm requests network-free."""
    from repro.errors import NativeToolchainError
    from repro.ir.interp import cached_vm
    so_dir = None
    if backend == "native" and ctx.cache is not None:
        so_dir = ctx.cache.native_dir
    shared_store = (backend == "native" and sync_key is not None
                    and hasattr(ctx.cache, "fetch_native"))
    if shared_store:
        fetch = tracing.span("store.native_fetch", key=sync_key[:32])
        with fetch:
            status = ctx.cache.fetch_native(program, fuse, sync_key)
            fetch.set(outcome=status)
        if status in ("fetched", "local", "miss"):
            ctx.meta["native_store"] = status
    try:
        acquire = tracing.span("vm.acquire", backend=backend,
                               program=program.name, fuse=fuse)
        with acquire:
            vm = cached_vm(program, backend=backend, so_cache_dir=so_dir,
                           fuse=fuse)
            if vm.backend != backend:
                acquire.set(backend_effective=vm.backend)
            if vm.fusion_stats is not None:
                acquire.set(**{f"fusion_{k}": v for k, v
                               in vm.fusion_stats.as_dict().items()})
        if shared_store and vm.backend == "native":
            if ctx.cache.publish_native(program, fuse, sync_key):
                ctx.meta["native_store"] = "published"
        return vm
    except NativeToolchainError as exc:
        raise ServeError("native_unavailable", str(exc))


def _observe_adaptive(artifact: Artifact, backend: str, steps: int,
                      batch: int, fuse: bool, ctx: "HandlerContext") -> None:
    """Feed one ``auto`` request into the adaptive heat tracker.

    Only updates counters and possibly *enqueues* a background compile —
    the promotion itself lands later, off the request path, and is
    observed by a subsequent request through the VM cache swap.
    """
    if backend != "auto":
        return
    from repro.serve import adaptive
    controller = adaptive.controller()
    if controller is None:
        return
    ctx.meta["adaptive"] = controller.observe(
        artifact.program, steps=steps, batch=batch, fuse=fuse,
        model_name=artifact.model_name)


def _int_field(req: dict, name: str, default: int, lo: int, hi: int) -> int:
    value = req.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) \
            or not lo <= value <= hi:
        raise ServeError("bad_request",
                         f"{name} must be an integer in [{lo}, {hi}], "
                         f"got {value!r}")
    return value


# -- artifact production -------------------------------------------------------


def get_or_compile(model, model_fp: str, generator: str, backend: str,
                   cache: ArtifactCache | None,
                   fuse: bool = True) -> tuple[Artifact, str]:
    """Fetch the compiled artifact for (model, generator, backend, fuse).

    Returns ``(artifact, source)`` where source is ``"hit"`` (loaded from
    the on-disk cache), ``"miss"`` (freshly generated and stored), or
    ``"off"`` (no cache configured).  The stored program is always the
    generator's output — fusion happens in the VM — but ``fuse``
    participates in the key and in the artifact's stats so the two
    configurations never share a cache cell.
    """
    key = artifact_key(model_fp, generator, backend, fuse)
    if cache is not None:
        lookup = tracing.span("cache.lookup", cache="artifact", key=key[:12])
        with lookup:
            artifact = cache.get(key)
            lookup.set(outcome="hit" if artifact is not None else "miss")
        if artifact is not None:
            return artifact, "hit"
    from repro.codegen import make_generator
    with tracing.span("codegen", generator=generator, model=model.name):
        code = make_generator(generator).generate(model)
    artifact = Artifact(
        model_fingerprint=model_fp,
        model_name=model.name,
        generator=generator,
        backend=backend,
        program=code.program,
        input_buffers=dict(code.input_buffers),
        output_buffers=dict(code.output_buffers),
        stats={
            "static_bytes": code.program.static_bytes,
            "buffer_count": len(code.program.buffers),
            "function_count": len(code.program.functions),
            "statement_count": sum(1 for _ in code.program.walk()),
            "optimizable_blocks": len(code.ranges.optimizable),
            "eliminated_elements":
                code.ranges.eliminated_elements(code.analyzed),
        },
    )
    if fuse:
        from repro.ir.fuse import fuse_program
        _, fstats = fuse_program(code.program)
        artifact.stats["fusion"] = fstats.as_dict()
    if cache is not None:
        with tracing.span("cache.store", cache="artifact", key=key[:12]):
            cache.put(key, artifact)
        return artifact, "miss"
    return artifact, "off"


# -- op implementations --------------------------------------------------------


def op_ping(req: dict, ctx: "HandlerContext") -> dict:
    from repro.serve.protocol import PROTOCOL_VERSION
    result = {"pong": True, "pid": os.getpid(),
              "protocol_version": PROTOCOL_VERSION}
    if ctx.shard is not None:
        result["shard"] = ctx.shard
    return result


def op_compile(req: dict, ctx: "HandlerContext") -> dict:
    generator = _generator_name(req)
    backend = _backend_name(req)
    fuse = _fuse_flag(req)
    model, model_fp = resolve_model(req)
    artifact, source = get_or_compile(model, model_fp, generator, backend,
                                      ctx.cache, fuse)
    ctx.meta["artifact_cache"] = source
    result = {
        "model": artifact.model_name,
        "model_fingerprint": model_fp,
        "generator": generator,
        "fuse": fuse,
        "stats": dict(artifact.stats),
    }
    if req.get("include_source"):
        from repro.codegen import emit_c
        program = artifact.program
        if fuse:
            from repro.ir.fuse import fuse_program
            program, _ = fuse_program(program)
        result["c_source"] = emit_c(program)
    return result


def _decode_inputs(req: dict, model, artifact: Artifact,
                   seed: int) -> dict[str, np.ndarray]:
    """Explicit per-inport inputs, or deterministic random ones by seed."""
    raw = req.get("inputs")
    if raw is None:
        from repro.sim.simulator import random_inputs
        named = random_inputs(model, seed=seed)
    else:
        if not isinstance(raw, dict):
            raise ServeError("bad_request",
                             "inputs must be an object keyed by inport name")
        named = {}
        for name, value in raw.items():
            if isinstance(value, dict) and set(value) == {"re", "im"}:
                named[name] = (np.asarray(value["re"], dtype=float)
                               + 1j * np.asarray(value["im"], dtype=float))
            else:
                try:
                    named[name] = np.asarray(value)
                except (ValueError, TypeError) as exc:
                    raise ServeError("bad_request",
                                     f"input {name!r} is not array-like: {exc}")
    mapped = {}
    for name, value in named.items():
        buffer = artifact.input_buffers.get(name)
        if buffer is None:
            known = ", ".join(sorted(artifact.input_buffers))
            raise ServeError("bad_request",
                             f"unknown inport {name!r}; known: {known}")
        mapped[buffer] = value
    return mapped


def op_run(req: dict, ctx: "HandlerContext") -> dict:
    from repro.errors import SimulationError
    from repro.ir.interp import vm_cache_stats
    generator = _generator_name(req)
    backend = _backend_name(req)
    fuse = _fuse_flag(req)
    steps = _int_field(req, "steps", 1, 1, MAX_STEPS)
    seed = _int_field(req, "seed", 0, 0, 2 ** 32 - 1)
    model, model_fp = resolve_model(req)
    artifact, source = get_or_compile(model, model_fp, generator, backend,
                                      ctx.cache, fuse)
    ctx.meta["artifact_cache"] = source

    inputs = _decode_inputs(req, model, artifact, seed)
    _observe_adaptive(artifact, backend, steps, 1, fuse, ctx)
    hits_before = vm_cache_stats()["hits"]
    vm = _native_vm(artifact.program, backend, ctx, fuse,
                    sync_key=f"{model_fp}:{generator}")
    ctx.meta["vm_cache"] = (
        "hit" if vm_cache_stats()["hits"] > hits_before else "miss")
    t0 = time.perf_counter()
    try:
        exec_result = vm.run(inputs, steps=steps)
    except SimulationError as exc:
        raise ServeError("bad_request", f"execution rejected: {exc}")
    execute_seconds = time.perf_counter() - t0

    outputs = {name: exec_result.outputs[buffer]
               for name, buffer in artifact.output_buffers.items()}
    totals = exec_result.counts.total
    result = {
        "model": artifact.model_name,
        "model_fingerprint": model_fp,
        "generator": generator,
        "backend": backend,
        "backend_effective": vm.backend,
        "fuse": fuse,
        "fusion": (vm.fusion_stats.as_dict()
                   if vm.fusion_stats is not None else None),
        "steps": steps,
        "execute_seconds": round(execute_seconds, 6),
        "counts": totals.as_dict(),
        "counts_exact": bool(getattr(vm, "counts_exact", True)),
        "total_element_ops": totals.total_element_ops,
        "peak_buffer_bytes": exec_result.peak_buffer_bytes,
        "output_sha256": _output_digest(outputs),
    }
    if vm.fusion_stats is not None:
        ctx.meta["fusion"] = vm.fusion_stats.as_dict()
    if req.get("include_outputs", True):
        result["outputs"] = outputs
    return result


def _output_digest(outputs: dict) -> str:
    digest = hashlib.sha256()
    for name in sorted(outputs):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(outputs[name]).tobytes())
    return digest.hexdigest()


def op_run_batch(req: dict, ctx: "HandlerContext") -> dict:
    """Evaluate B independent instances of one compiled program in a
    single batched VM call.

    ``instances`` is a list of per-instance objects, each shaped like a
    ``run`` request's input fields (``seed``, ``inputs``,
    ``include_outputs``); model/generator/backend/steps are shared.  The
    warm VM cache serves **one** batched VM (the per-batch-size companion
    lives inside it) rather than B singletons.  A malformed instance
    fails alone — its slot carries a typed error while the rest execute.

    The aggregate ``counts`` equal the sum over executed instances
    whenever ``counts_exact`` is True (the batched-execution contract,
    see :mod:`repro.ir.batch`).
    """
    from repro.errors import SimulationError
    from repro.ir.interp import vm_cache_stats
    generator = _generator_name(req)
    backend = _backend_name(req)
    fuse = _fuse_flag(req)
    steps = _int_field(req, "steps", 1, 1, MAX_STEPS)
    instances = req.get("instances")
    if not isinstance(instances, list) or not instances:
        raise ServeError("bad_request",
                         "run_batch needs a non-empty 'instances' list")
    if len(instances) > MAX_BATCH_INSTANCES:
        raise ServeError(
            "bad_request",
            f"run_batch accepts at most {MAX_BATCH_INSTANCES} instances, "
            f"got {len(instances)}")
    model, model_fp = resolve_model(req)
    artifact, source = get_or_compile(model, model_fp, generator, backend,
                                      ctx.cache, fuse)
    ctx.meta["artifact_cache"] = source

    results: list[dict | None] = [None] * len(instances)
    decoded: list[tuple[int, dict]] = []
    for i, inst in enumerate(instances):
        if not isinstance(inst, dict):
            results[i] = {"ok": False, "error_type": "bad_request",
                          "error": f"instance {i} must be an object"}
            continue
        try:
            seed = _int_field(inst, "seed", 0, 0, 2 ** 32 - 1)
            decoded.append((i, _decode_inputs(inst, model, artifact, seed)))
        except ServeError as exc:
            results[i] = {"ok": False, "error_type": exc.error_type,
                          "error": exc.message}

    _observe_adaptive(artifact, backend, steps, max(len(decoded), 1), fuse,
                      ctx)
    hits_before = vm_cache_stats()["hits"]
    vm = _native_vm(artifact.program, backend, ctx, fuse,
                    sync_key=f"{model_fp}:{generator}")
    ctx.meta["vm_cache"] = (
        "hit" if vm_cache_stats()["hits"] > hits_before else "miss")
    ctx.meta["batched"] = len(decoded)
    if vm.fusion_stats is not None:
        ctx.meta["fusion"] = vm.fusion_stats.as_dict()

    execute_seconds = 0.0
    counts: dict = {}
    total_element_ops = 0
    counts_exact = bool(getattr(vm, "counts_exact", True))
    peak_buffer_bytes = 0
    if decoded:
        t0 = time.perf_counter()
        try:
            batch_res = vm.run_batch([inputs for _, inputs in decoded],
                                     steps=steps)
        except SimulationError as exc:
            raise ServeError("bad_request", f"execution rejected: {exc}")
        execute_seconds = time.perf_counter() - t0
        totals = batch_res.counts.total
        counts = totals.as_dict()
        total_element_ops = totals.total_element_ops
        counts_exact = batch_res.counts_exact
        peak_buffer_bytes = batch_res.peak_buffer_bytes
        for (i, _), out in zip(decoded, batch_res.outputs):
            outputs = {name: out[buffer]
                       for name, buffer in artifact.output_buffers.items()}
            entry: dict = {"ok": True,
                           "output_sha256": _output_digest(outputs)}
            if instances[i].get("include_outputs",
                                req.get("include_outputs", True)):
                entry["outputs"] = outputs
            results[i] = entry

    return {
        "model": artifact.model_name,
        "model_fingerprint": model_fp,
        "generator": generator,
        "backend": backend,
        "backend_effective": vm.backend,
        "fuse": fuse,
        "fusion": (vm.fusion_stats.as_dict()
                   if vm.fusion_stats is not None else None),
        "steps": steps,
        "batch": len(instances),
        "executed": len(decoded),
        "execute_seconds": round(execute_seconds, 6),
        "counts": counts,
        "counts_exact": counts_exact,
        "total_element_ops": total_element_ops,
        "peak_buffer_bytes": peak_buffer_bytes,
        "results": results,
    }


def op_ranges(req: dict, ctx: "HandlerContext") -> dict:
    from repro.core.analysis import analyze
    from repro.core.ranges import determine_ranges
    model, model_fp = resolve_model(req)
    analyzed = analyze(model)
    ranges = determine_ranges(analyzed)
    blocks = []
    for name in analyzed.schedule:
        sig = analyzed.signal_of(name)
        blocks.append({
            "block": name,
            "shape": list(sig.shape),
            "range": ranges.output_range[name].describe(),
            "optimizable": name in ranges.optimizable,
        })
    return {
        "model": model.name,
        "model_fingerprint": model_fp,
        "optimizable_blocks": len(ranges.optimizable),
        "eliminated_elements": ranges.eliminated_elements(analyzed),
        "blocks": blocks,
    }


def op_report(req: dict, ctx: "HandlerContext") -> dict:
    """Per-generator comparison table for one model (counts + memory)."""
    from repro.codegen import ALL_GENERATORS
    from repro.sim.simulator import random_inputs
    backend = _backend_name(req)
    fuse = _fuse_flag(req)
    steps = _int_field(req, "steps", 1, 1, MAX_STEPS)
    seed = _int_field(req, "seed", 0, 0, 2 ** 32 - 1)
    generators = req.get("generators", list(ALL_GENERATORS))
    if not isinstance(generators, list) or not generators:
        raise ServeError("bad_request", "generators must be a non-empty list")
    model, model_fp = resolve_model(req)
    named = random_inputs(model, seed=seed)
    artifact_hits = artifact_misses = 0
    rows = []
    for generator in generators:
        _generator_name({"generator": generator})
        artifact, source = get_or_compile(model, model_fp, generator,
                                          backend, ctx.cache, fuse)
        artifact_hits += source == "hit"
        artifact_misses += source == "miss"
        vm = _native_vm(artifact.program, backend, ctx, fuse,
                        sync_key=f"{model_fp}:{generator}")
        inputs = {artifact.input_buffers[n]: v for n, v in named.items()}
        totals = vm.run(inputs, steps=steps).counts.total
        rows.append({
            "generator": generator,
            "total_element_ops": totals.total_element_ops,
            "flops": totals.flops,
            "static_bytes": artifact.stats["static_bytes"],
            "eliminated_elements": artifact.stats["eliminated_elements"],
            "fusion": (vm.fusion_stats.as_dict()
                       if vm.fusion_stats is not None else None),
        })
    ctx.meta["artifact_cache"] = (
        "hit" if artifact_misses == 0 and artifact_hits else
        "miss" if artifact_misses else "off")
    baseline = next((r for r in rows if r["generator"] == "simulink"), rows[0])
    for row in rows:
        row["ops_vs_baseline"] = (
            round(baseline["total_element_ops"]
                  / row["total_element_ops"], 3)
            if row["total_element_ops"] else None)
    return {"model": model.name, "model_fingerprint": model_fp,
            "steps": steps, "fuse": fuse, "rows": rows}


def op_sleep(req: dict, ctx: "HandlerContext") -> dict:
    """Debug op: hold the worker for N seconds (timeout-path testing).

    With ``"exit": true`` the worker process dies without replying after
    the sleep — the deterministic crash used to test the pool's
    retry-once-then-fail recovery path.
    """
    if not ctx.allow_debug:
        raise ServeError("bad_request",
                         "sleep is a debug op; start the server with "
                         "--debug-ops to enable it")
    seconds = req.get("seconds", 0.1)
    if not isinstance(seconds, (int, float)) or not 0 <= seconds <= 300:
        raise ServeError("bad_request",
                         f"seconds must be in [0, 300], got {seconds!r}")
    time.sleep(float(seconds))
    if req.get("exit"):
        os._exit(17)
    return {"slept": float(seconds), "pid": os.getpid()}


_HANDLERS = {
    "ping": op_ping,
    "compile": op_compile,
    "run": op_run,
    "run_batch": op_run_batch,
    "ranges": op_ranges,
    "report": op_report,
    "sleep": op_sleep,
}


class HandlerContext:
    """Per-request execution context handed to op implementations."""

    def __init__(self, cache: ArtifactCache | None, allow_debug: bool = False,
                 shard: str | None = None):
        self.cache = cache
        self.allow_debug = allow_debug
        self.shard = shard
        self.meta: dict = {}


def handle_request(req: dict, cache: ArtifactCache | None,
                   allow_debug: bool = False,
                   shard: str | None = None) -> tuple[dict, dict]:
    """Execute one decoded request; returns ``(result, meta)``.

    Raises :class:`ServeError` for typed failures; any other exception is
    a bug and becomes the caller's ``internal`` error.  ``metrics`` and
    ``shutdown`` are served by the front-end, not here.  ``shard``
    (cluster mode) is stamped into the response meta so clients and the
    router can attribute which shard served a request.
    """
    op = req.get("op")
    handler = _HANDLERS.get(op)
    if handler is None:
        raise ServeError("bad_request",
                         f"op {op!r} is not executable by a worker")
    ctx = HandlerContext(cache, allow_debug, shard)
    ctx.meta["worker_pid"] = os.getpid()
    if shard is not None:
        ctx.meta["shard"] = shard
    root = tracing.resume(req.get("_trace"), "worker.handle", op=op)
    t0 = time.perf_counter()
    with root:
        result = handler(req, ctx)
    ctx.meta["service_seconds"] = round(time.perf_counter() - t0, 6)
    spans = root.export()
    _attach_adaptive_meta(ctx, spans)
    if spans:
        ctx.meta["spans"] = spans
    return result, ctx.meta


def _attach_adaptive_meta(ctx: HandlerContext, spans: list) -> None:
    """Ship adaptive-tier telemetry on the next handled request.

    Promotions complete on a background thread — no request is in flight
    to carry the news — so completed events, the ``native.promote`` trace
    spans, the current state distribution, and the cumulative VM-cache
    eviction count ride the meta of whatever this worker handles next.
    The server folds them into counters and the per-worker state gauge.
    """
    from repro.ir.interp import vm_cache_stats
    from repro.serve import adaptive
    controller = adaptive.controller()
    if controller is not None:
        # Traced vector runs calibrate the promotion threshold's
        # overhead factor (no-op for untraced requests).
        controller.record_vm_run_spans(spans)
        events = controller.drain_events()
        if events:
            for event in events:
                spans.extend(event.pop("spans", ()))
            ctx.meta["adaptive_events"] = events
        ctx.meta["adaptive_states"] = controller.state_counts()
    evictions = vm_cache_stats()["evictions"]
    if evictions:
        ctx.meta["vm_cache_evictions"] = evictions
