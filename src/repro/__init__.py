"""FRODO reproduction: efficient code generation for data-intensive
Simulink models via redundancy elimination (DAC 2024).

Public API highlights::

    from repro import (
        ModelBuilder, load_slx, save_slx,         # models
        simulate, random_inputs,                  # reference simulation
        FrodoGenerator, SimulinkECGenerator,      # code generators
        DFSynthGenerator, HCGGenerator,
        emit_c, execute, PROFILES, modeled_seconds,
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.codegen import (  # noqa: F401
    ALL_GENERATORS, CodeGenerator, DFSynthGenerator, FrodoGenerator,
    GeneratedCode, HCGGenerator, SimulinkECGenerator, emit_c, make_generator,
)
from repro.core import (  # noqa: F401
    AnalyzedModel, IndexSet, RangeResult, Region, analyze, determine_ranges,
)
from repro.errors import (  # noqa: F401
    AnalysisError, CodegenError, ModelError, NativeToolchainError, ReproError,
    SimulationError, SlxFormatError, ValidationError,
)
from repro.ir import (  # noqa: F401
    PROFILES, OpCounts, Profile, Program, VirtualMachine, execute,
    modeled_seconds,
)
from repro.model import (  # noqa: F401
    Block, Connection, Model, ModelBuilder, PortRef, load_mdl, load_slx,
    save_mdl, save_slx,
)
from repro.sim import Simulator, random_inputs, simulate  # noqa: F401

__version__ = "1.0.0"
