"""A6 — translation-order ablation (paper background §2, step ③).

Any topological order is semantically valid; this bench confirms the
invariance (identical outputs and op counts under all three strategies)
and times the schedulers themselves on the largest zoo model.
"""

import numpy as np
import pytest

from conftest import write_report
from repro.codegen import FrodoGenerator
from repro.core.schedule import STRATEGIES, topological_schedule
from repro.eval.report import format_table
from repro.ir.interp import VirtualMachine
from repro.sim.simulator import random_inputs, simulate
from repro.zoo import build_model


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scheduler_speed(benchmark, strategy):
    model = build_model("Maintenance").flatten()
    order = benchmark.pedantic(
        lambda: topological_schedule(model, strategy), rounds=3, iterations=1)
    assert len(order) == len(model.blocks)


def test_report_schedule_invariance(benchmark, results_dir):
    """Outputs and dynamic op counts are schedule-invariant."""
    def gather():
        rows = []
        for model_name in ("Kalman", "AudioProcess", "Simpson"):
            model = build_model(model_name)
            inputs = random_inputs(model, seed=0)
            expected = simulate(model, inputs, steps=2)
            baseline_ops = None
            for strategy in STRATEGIES:
                generator = FrodoGenerator()
                generator.schedule_strategy = strategy
                code = generator.generate(model)
                result = VirtualMachine(code.program).run(
                    code.map_inputs(inputs), steps=2)
                outputs = code.map_outputs(result.outputs)
                for key in expected:
                    assert np.allclose(
                        np.asarray(outputs[key]).ravel(),
                        np.asarray(expected[key]).ravel()), \
                        f"{model_name}/{strategy}/{key}"
                ops = result.counts.total.total_element_ops
                if baseline_ops is None:
                    baseline_ops = ops
                assert ops == baseline_ops, \
                    f"{model_name}/{strategy}: op count changed with order"
                rows.append([model_name, strategy, ops, "identical"])
        return rows
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    text = format_table(["Model", "strategy", "element ops", "outputs"],
                        rows, title="A6: translation-order invariance")
    write_report(results_dir, "ablation_schedule.txt", text)
