"""E3 — Figure 6(a): FRODO's improvement over each baseline on ARM + GCC.

Op counts are architecture-independent; the ARM rendition re-weights the
already-measured counts with the arm-gcc profile.  The timed unit is the
cost-model evaluation; the figure (ASCII bars, one per model per baseline,
mirroring the paper's bar chart) is written to ``results/fig6_arm_gcc.txt``.
"""

from conftest import write_report
from repro.eval.experiments import PAPER_FIG6_RANGES, figure6

PROFILE = "arm-gcc"


def test_figure6_arm_gcc(benchmark, results_dir):
    result = benchmark.pedantic(lambda: figure6(PROFILE), rounds=1,
                                iterations=1)
    lines = [result.render(), ""]
    lines.append("improvement ranges (paper in parentheses):")
    for baseline, (low, high) in result.ranges().items():
        p_low, p_high = PAPER_FIG6_RANGES[(PROFILE, baseline)]
        lines.append(f"  vs {baseline:9s} measured {low:.2f}x-{high:.2f}x"
                     f"  (paper {p_low:.2f}x-{p_high:.2f}x)")
        assert low > 1.0, f"FRODO must win on every model ({baseline})"
    write_report(results_dir, "fig6_arm_gcc.txt", "\n".join(lines))
    from repro.eval.svg import save_figure6_svg
    save_figure6_svg(result, results_dir / "fig6_arm_gcc.svg")


def test_arm_improvement_exceeds_x86_for_hcg(benchmark):
    """The paper's ARM headline: narrower SIMD means the baselines' extra
    work costs more, so FRODO's edge grows — most visible vs HCG, whose
    forced 256-bit vectors shrink to 128-bit."""
    from repro.eval.experiments import table2

    def compute():
        arm = figure6(PROFILE).ranges()["hcg"]
        x86 = table2(profiles=("x86-gcc",)).improvement_ranges("x86-gcc")["hcg"]
        return arm, x86
    arm, x86 = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert arm[1] >= x86[1] * 0.95  # max improvement at least comparable
