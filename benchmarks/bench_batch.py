"""Batched-execution benchmark (`BENCH_batch.json`).

Measures the point of the batch dimension: per-instance cost must *fall*
as the batch grows, because one ``run_batch`` call amortizes dispatch
(Python interpretation of the loop IR, numpy kernel launches, native
call overhead) over B model instances.  For each backend and
B ∈ {1, 8, 64, 256} it times ``run_batch`` over B distinct input sets,
reports per-instance ms/step, and flags whether the series decreases
monotonically — the acceptance criterion for the vector and native
backends.  A second section measures serve-layer closed-loop throughput
with the request coalescer on vs off at high concurrency.

Outputs stay cross-checked: every timed configuration is first verified
bitwise against per-instance closure runs (small B) so the benchmark can
never drift from the correctness contract.

Run directly (not collected by the tier-1 pytest config)::

    PYTHONPATH=src python benchmarks/bench_batch.py          # full
    PYTHONPATH=src python benchmarks/bench_batch.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codegen import make_generator            # noqa: E402
from repro.ir.interp import VirtualMachine          # noqa: E402
from repro.native import find_compiler              # noqa: E402
from repro.sim.simulator import random_inputs       # noqa: E402
from repro.zoo import build_model                   # noqa: E402

# Models whose programs pass the batch-lift guard (repro.ir.batch
# .lift_reject), so the vector backend's fast path carries them; the
# acceptance criterion (per-instance ms/step strictly amortizing with B)
# is about that path, not the sequential fallback taken by programs with
# data-steered control flow.
DEFAULT_MODELS = ("Motivating", "ImagePipeline")
DEFAULT_BATCHES = (1, 8, 64, 256)
QUICK_BATCHES = (1, 8, 32)
INTERP_BACKENDS = ("closure", "vector", "native")


def best_of(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-N wall-clock seconds (min filters scheduler noise)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def verify_batch(vm, code, model, steps: int) -> None:
    """Small-B bitwise cross-check before anything is timed."""
    inputs_list = [code.map_inputs(random_inputs(model, seed=b))
                   for b in range(3)]
    batch = vm.run_batch(inputs_list, steps=steps)
    for b, inputs in enumerate(inputs_list):
        ref = VirtualMachine(code.program, backend="closure").run(
            inputs, steps=steps)
        for name, arr in ref.outputs.items():
            got = batch.outputs[b][name]
            if np.asarray(arr).tobytes() != np.asarray(got).tobytes():
                raise SystemExit(
                    f"batched output mismatch: {vm.backend} backend, "
                    f"instance {b}, buffer {name!r}")


def bench_model(model_name: str, batches: tuple[int, ...], steps: int,
                repeats: int, so_cache_dir: Path | None) -> dict:
    model = build_model(model_name)
    code = make_generator("frodo").generate(model)
    backends = [b for b in INTERP_BACKENDS
                if b != "native" or so_cache_dir is not None]
    rows: dict[str, dict] = {}
    for backend in backends:
        vm = VirtualMachine(code.program, backend=backend,
                            so_cache_dir=so_cache_dir)
        verify_batch(vm, code, model, steps)
        series = {}
        for batch in batches:
            inputs_list = [code.map_inputs(random_inputs(model, seed=b))
                           for b in range(batch)]
            seconds = best_of(
                lambda: vm.run_batch(inputs_list, steps=steps), repeats)
            series[str(batch)] = round(
                seconds * 1e3 / (batch * steps), 6)  # per-instance ms/step
        values = list(series.values())
        rows[backend] = {
            "per_instance_ms_per_step": series,
            "monotonic_decreasing": all(a >= b for a, b in
                                        zip(values, values[1:])),
            "speedup_max_batch": round(values[0] / values[-1], 2)
            if values[-1] else None,
        }
    return {"model": model_name, "steps": steps, "backends": rows}


def bench_serve_coalescing(quick: bool) -> dict:
    """Serve throughput with the coalescer on vs off (high concurrency)."""
    from repro.serve.bench import bench_coalescing
    with tempfile.TemporaryDirectory(prefix="bench-batch-") as cache_dir:
        return bench_coalescing(
            cache_dir, ("Motivating",), generator="frodo", steps=1,
            concurrency=8, requests_per_client=5 if quick else 25)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_batch",
        description="batched-execution benchmark "
                    "(BENCH_batch.json trajectory)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller batches, fewer repeats")
    parser.add_argument("--output", default=None,
                        help="output JSON path "
                             "(default: <repo>/BENCH_batch.json)")
    parser.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS))
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--no-serve", action="store_true",
                        help="skip the serve-coalescing section")
    args = parser.parse_args(argv)

    batches = QUICK_BATCHES if args.quick else DEFAULT_BATCHES
    repeats = args.repeats or (2 if args.quick else 5)

    have_cc = find_compiler() is not None
    with tempfile.TemporaryDirectory(prefix="bench-batch-so-") as so_dir:
        so_cache_dir = Path(so_dir) if have_cc else None
        models = [bench_model(name, batches, args.steps, repeats,
                              so_cache_dir)
                  for name in args.models]

    result = {
        "benchmark": "batch",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": __import__("os").cpu_count(),
        },
        "config": {
            "models": list(args.models),
            "batches": list(batches),
            "steps": args.steps,
            "repeats": repeats,
            "native": have_cc,
        },
        "models": models,
        "serve_coalescing": (None if args.no_serve
                             else bench_serve_coalescing(args.quick)),
        "quick": bool(args.quick),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }

    out_path = (Path(args.output) if args.output
                else REPO_ROOT / "BENCH_batch.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    for entry in models:
        for backend, row in entry["backends"].items():
            series = row["per_instance_ms_per_step"]
            trend = " > ".join(f"{v:g}" for v in series.values())
            mono = "monotonic" if row["monotonic_decreasing"] else \
                "NOT monotonic"
            print(f"{entry['model']:>14s} {backend:>8s}: {trend} "
                  f"ms/step/instance ({mono}, "
                  f"x{row['speedup_max_batch']} at B={max(series, key=int)})")
    coal = result["serve_coalescing"]
    if coal:
        print(f"serve coalescing@c={coal['concurrency']}: "
              f"{coal['coalescing_off']['throughput_rps']} -> "
              f"{coal['coalescing_on']['throughput_rps']} req/s "
              f"(x{coal['speedup']})")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
