"""Closure-vs-vector-vs-native VM backend benchmark (`BENCH_vm.json`).

Times one step of each generated program under every execution backend
(``closure``, ``vector``, ``auto``, and — when a C toolchain is present —
``native``, the emitted C compiled into an in-process shared object),
cross-checks that outputs and ``ContextCounts`` stay bit-identical,
measures the program-cache hit path and the native cold-compile vs
warm-``.so`` gap, and records everything to ``BENCH_vm.json`` at the
repo root so successive PRs can track the perf trajectory.

Run directly (not collected by the tier-1 pytest config)::

    PYTHONPATH=src python benchmarks/bench_vm_backends.py          # full
    PYTHONPATH=src python benchmarks/bench_vm_backends.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codegen import make_generator            # noqa: E402
from repro.ir.interp import VirtualMachine, cached_vm, clear_vm_cache  # noqa: E402
from repro.native import clear_shared_program_cache, find_compiler  # noqa: E402
from repro.obs import profile_vm                    # noqa: E402
from repro.sim.simulator import random_inputs       # noqa: E402
from repro.zoo import build_model                   # noqa: E402

DEFAULT_MODELS = ("ImagePipeline", "AudioProcess")
DEFAULT_GENERATORS = ("simulink", "dfsynth", "hcg", "frodo")
INTERP_BACKENDS = ("closure", "vector", "auto")


def best_of(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-N wall-clock seconds (min filters scheduler noise)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_cell(model_name: str, generator: str, steps: int,
               repeats: int, so_cache_dir: Path | None = None) -> dict:
    model = build_model(model_name)
    code = make_generator(generator).generate(model)
    inputs = code.map_inputs(random_inputs(model, seed=0))

    timings: dict[str, float] = {}
    unfused: dict[str, float] = {}
    results = {}
    fusion_stats: dict | None = None
    stages: dict[str, dict] = {}
    for backend in INTERP_BACKENDS:
        vm = VirtualMachine(code.program, backend=backend)  # fuse=True
        if fusion_stats is None and vm.fusion_stats is not None:
            fusion_stats = vm.fusion_stats.as_dict()
        results[backend] = vm.run(inputs, steps=steps)  # also warms compile
        timings[backend] = best_of(lambda: vm.run(inputs, steps=steps),
                                   repeats)
        with profile_vm() as prof:
            vm.run(inputs, steps=steps)
        stages[backend] = prof.as_dict()
        plain = VirtualMachine(code.program, backend=backend, fuse=False)
        base = plain.run(inputs, steps=steps)
        for name, expected in base.outputs.items():
            assert np.asarray(expected).tobytes() == \
                np.asarray(results[backend].outputs[name]).tobytes(), (
                f"{model_name}/{generator}: fused {backend} output "
                f"{name!r} diverges from unfused")
        unfused[backend] = best_of(lambda: plain.run(inputs, steps=steps),
                                   repeats)

    native: dict = {}
    if so_cache_dir is not None:
        # cold: code generation + C compiler + dlopen, all on one timer
        clear_shared_program_cache()
        t0 = time.perf_counter()
        vm = VirtualMachine(code.program, backend="native",
                            so_cache_dir=so_cache_dir)
        cold_s = time.perf_counter() - t0
        results["native"] = vm.run(inputs, steps=steps)
        timings["native"] = best_of(lambda: vm.run(inputs, steps=steps),
                                    repeats)
        with profile_vm() as prof:
            vm.run(inputs, steps=steps)
        stages["native"] = prof.as_dict()
        plain = VirtualMachine(code.program, backend="native",
                               so_cache_dir=so_cache_dir, fuse=False)
        base = plain.run(inputs, steps=steps)
        for name, expected in base.outputs.items():
            assert np.asarray(expected).tobytes() == \
                np.asarray(results["native"].outputs[name]).tobytes(), (
                f"{model_name}/{generator}: fused native output "
                f"{name!r} diverges from unfused")
        unfused["native"] = best_of(lambda: plain.run(inputs, steps=steps),
                                    repeats)
        # warm: the .so is on disk — a fresh process image (simulated by
        # dropping the in-process registry) skips codegen and cc entirely
        clear_shared_program_cache()
        t0 = time.perf_counter()
        VirtualMachine(code.program, backend="native",
                       so_cache_dir=so_cache_dir)
        warm_s = time.perf_counter() - t0
        native = {
            "cold_build_ms": round(cold_s * 1e3, 3),
            "warm_load_ms": round(warm_s * 1e3, 3),
            "counts_exact": vm.counts_exact,
        }

    ref = results["closure"]
    for backend in results:
        if backend == "closure":
            continue
        if backend != "native" or native.get("counts_exact"):
            assert ref.counts == results[backend].counts, (
                f"{model_name}/{generator}: counts diverge under {backend}")
        for name, expected in ref.outputs.items():
            assert np.asarray(expected).tobytes() == \
                np.asarray(results[backend].outputs[name]).tobytes(), (
                f"{model_name}/{generator}: output {name!r} diverges "
                f"under {backend}")

    ms = {b: timings[b] * 1e3 / steps for b in timings}
    ms_unfused = {b: unfused[b] * 1e3 / steps for b in unfused}
    cell = {
        "model": model_name,
        "generator": generator,
        "steps": steps,
        "ms_per_step": {b: round(v, 4) for b, v in ms.items()},
        "ms_per_step_unfused": {b: round(v, 4)
                                for b, v in ms_unfused.items()},
        "fusion_speedup": {b: round(ms_unfused[b] / ms[b], 2)
                           for b in ms_unfused},
        "fusion": fusion_stats,
        "stages": stages,
        "speedup_vector": round(ms["closure"] / ms["vector"], 2),
        "speedup_auto": round(ms["closure"] / ms["auto"], 2),
        "identical_outputs_and_counts": True,
    }
    if native:
        cell["speedup_native"] = round(ms["closure"] / ms["native"], 2)
        cell["native"] = native
    return cell


def bench_program_cache(model_name: str = "AudioProcess",
                        generator: str = "frodo",
                        repeats: int = 20) -> dict:
    """Cold VM construction vs content-hash cache hit."""
    code = make_generator(generator).generate(build_model(model_name))
    cold = best_of(lambda: VirtualMachine(code.program), repeats, warmup=0)
    clear_vm_cache()
    cached_vm(code.program)
    hit = best_of(lambda: cached_vm(code.program), repeats)
    return {
        "model": model_name,
        "generator": generator,
        "cold_construct_ms": round(cold * 1e3, 4),
        "cache_hit_ms": round(hit * 1e3, 4),
        "hit_speedup": round(cold / hit, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: frodo generator only, fewer repeats")
    parser.add_argument("--models", nargs="*", default=list(DEFAULT_MODELS))
    parser.add_argument("--generators", nargs="*",
                        default=list(DEFAULT_GENERATORS))
    parser.add_argument("--steps", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here (default: BENCH_vm.json at the "
                             "repo root; --quick skips writing)")
    args = parser.parse_args(argv)

    generators = ["frodo"] if args.quick else args.generators
    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else 7)

    compiler = find_compiler()
    if compiler is None:
        print("note: no C compiler on PATH; native column skipped")

    cells = []
    print(f"{'model':14s} {'generator':9s} {'closure':>9s} {'vector':>9s} "
          f"{'auto':>9s} {'native':>9s} {'speedup':>8s}")
    with tempfile.TemporaryDirectory(prefix="bench_so_") as so_dir:
        for model_name in args.models:
            for generator in generators:
                cell = bench_cell(
                    model_name, generator, args.steps, repeats,
                    so_cache_dir=Path(so_dir) if compiler else None)
                cells.append(cell)
                ms = cell["ms_per_step"]
                native_ms = (f"{ms['native']:8.2f}ms" if "native" in ms
                             else f"{'-':>10s}")
                print(f"{model_name:14s} {generator:9s} "
                      f"{ms['closure']:8.2f}ms {ms['vector']:8.2f}ms "
                      f"{ms['auto']:8.2f}ms {native_ms} "
                      f"{cell['speedup_vector']:7.1f}x")
                if "native" in cell:
                    n = cell["native"]
                    print(f"{'':24s} native cold {n['cold_build_ms']:.1f}ms "
                          f"-> warm .so {n['warm_load_ms']:.1f}ms, "
                          f"{cell['speedup_native']:.1f}x vs closure")
                fs = cell["fusion_speedup"]
                fusion = cell["fusion"] or {}
                print(f"{'':24s} fusion ({fusion.get('loops_before', '?')}"
                      f"->{fusion.get('loops_after', '?')} loops): "
                      + " ".join(f"{b} {v:.2f}x" for b, v in fs.items()))

    cache = bench_program_cache(repeats=repeats * 3)
    print(f"program cache: cold {cache['cold_construct_ms']:.2f}ms -> hit "
          f"{cache['cache_hit_ms']:.4f}ms ({cache['hit_speedup']:.0f}x)")

    report = {
        "benchmark": "vm_backends",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "compiler": compiler,
        "config": {"steps": args.steps, "repeats": repeats,
                   "quick": args.quick},
        "cells": cells,
        "program_cache": cache,
    }
    if not args.quick or args.output:
        out = Path(args.output) if args.output else REPO_ROOT / "BENCH_vm.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")

    slow = [c for c in cells
            if c["generator"] == "frodo" and c["speedup_vector"] < 10.0
            and c["model"] in ("ImagePipeline", "AudioProcess")]
    for cell in slow:
        print(f"WARNING: {cell['model']}/frodo vector speedup "
              f"{cell['speedup_vector']}x below the 10x target")
    return 1 if (slow and not args.quick) else 0


if __name__ == "__main__":
    raise SystemExit(main())
