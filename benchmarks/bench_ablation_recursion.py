"""A1 — ablation: recursive range propagation vs direct-only pull-back.

Quantifies the paper's first challenge ("indirectly connected blocks can
also influence each other"): how much of FRODO's win survives when
demands are pulled back only one level.
"""

import pytest

from conftest import write_report
from repro.eval.experiments import ablation_recursion
from repro.eval.runner import measure
from repro.zoo import TABLE1

MODEL_IDS = [entry.name for entry in TABLE1]


@pytest.mark.parametrize("generator", ["frodo", "frodo-direct"])
@pytest.mark.parametrize("model_name", ["AudioProcess", "Decryption",
                                        "HighPass", "Maintenance"])
def test_vm_execution(benchmark, prepared_run, model_name, generator):
    run = prepared_run(model_name, generator)
    benchmark.pedantic(run.execute, rounds=3, iterations=1)


def test_report_ablation(benchmark, results_dir):
    text = benchmark.pedantic(ablation_recursion, rounds=1, iterations=1)
    write_report(results_dir, "ablation_recursion.txt", text)


def test_recursion_strictly_helps_on_deep_chains(benchmark):
    """On cascade models (HighPass), one-level pull-back must be measurably
    slower than full recursion; everywhere it must never be faster."""
    def gather():
        return {m: (measure(m, "frodo", "x86-gcc").seconds,
                    measure(m, "frodo-direct", "x86-gcc").seconds)
                for m in MODEL_IDS}
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    for model, (full, direct) in rows.items():
        assert direct >= full * 0.999, f"{model}: direct-only beat recursion"
    full, direct = rows["HighPass"]
    assert direct / full > 1.1, "deep cascade should benefit from recursion"
