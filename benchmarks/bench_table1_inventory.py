"""E1 — Table 1: the benchmark inventory.

Benchmarks the front half of the pipeline (build + flatten + validate +
type + schedule + I/O-mapping-driven range determination) per model, and
regenerates the Table 1 listing.
"""

import pytest

from conftest import write_report
from repro.core.analysis import analyze
from repro.core.ranges import determine_ranges
from repro.eval.experiments import table1
from repro.zoo import TABLE1, build_model

MODEL_IDS = [entry.name for entry in TABLE1]


@pytest.mark.parametrize("model_name", MODEL_IDS)
def test_analysis_pipeline(benchmark, model_name):
    def pipeline():
        model = build_model(model_name)
        analyzed = analyze(model)
        return determine_ranges(analyzed)
    ranges = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert ranges.output_range


def test_report_table1(benchmark, results_dir):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    for entry in TABLE1:
        assert entry.name in text
    write_report(results_dir, "table1_inventory.txt", text)
