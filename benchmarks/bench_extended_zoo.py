"""Extended-zoo benchmarks: the 2-D image pipeline and battery monitor.

Not part of the paper's Table 1 — these quantify redundancy elimination
on the extension block vocabulary (Convolution2D ROI trimming, the
Assignment dual-truncation, and the conservative index_port path).
"""

import pytest

from conftest import write_report
from repro.eval.report import format_table
from repro.eval.runner import GENERATOR_ORDER
from repro.ir.cost import X86_GCC
from repro.ir.interp import VirtualMachine
from repro.codegen import make_generator
from repro.sim.simulator import random_inputs
from repro.zoo import EXTENDED, build_model

EXTENDED_IDS = [e.name for e in EXTENDED]


@pytest.mark.parametrize("generator", GENERATOR_ORDER)
@pytest.mark.parametrize("model_name", EXTENDED_IDS)
def test_vm_execution(benchmark, prepared_run, model_name, generator):
    run = prepared_run(model_name, generator)
    benchmark.pedantic(run.execute, rounds=3, iterations=1)


def test_report_extended_zoo(benchmark, results_dir):
    def gather():
        rows = []
        for model_name in EXTENDED_IDS:
            model = build_model(model_name)
            inputs = random_inputs(model, seed=0)
            cells = {}
            for generator in GENERATOR_ORDER:
                code = make_generator(generator).generate(model)
                counts = VirtualMachine(code.program).run(
                    code.map_inputs(inputs)).counts
                cells[generator] = X86_GCC.modeled_time_ns(counts)
            for generator in GENERATOR_ORDER:
                rows.append([model_name, generator,
                             f"{cells[generator]:,.0f}",
                             f"{cells[generator] / cells['frodo']:.2f}x"])
        return rows
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    text = format_table(["Model", "generator", "ns (x86-gcc)", "vs frodo"],
                        rows, title="Extended zoo (beyond Table 1)")
    write_report(results_dir, "extended_zoo.txt", text)
    # FRODO must win on both extension models too.
    for i in range(0, len(rows), len(GENERATOR_ORDER)):
        group = rows[i:i + len(GENERATOR_ORDER)]
        frodo_ns = float(group[-1][2].replace(",", ""))
        for row in group[:-1]:
            assert float(row[2].replace(",", "")) >= frodo_ns
