"""E4 — Figure 6(b): FRODO's improvement over each baseline on ARM + Clang."""

from conftest import write_report
from repro.eval.experiments import PAPER_FIG6_RANGES, figure6

PROFILE = "arm-clang"


def test_figure6_arm_clang(benchmark, results_dir):
    result = benchmark.pedantic(lambda: figure6(PROFILE), rounds=1,
                                iterations=1)
    lines = [result.render(), ""]
    lines.append("improvement ranges (paper in parentheses):")
    for baseline, (low, high) in result.ranges().items():
        p_low, p_high = PAPER_FIG6_RANGES[(PROFILE, baseline)]
        lines.append(f"  vs {baseline:9s} measured {low:.2f}x-{high:.2f}x"
                     f"  (paper {p_low:.2f}x-{p_high:.2f}x)")
        assert low > 1.0
    write_report(results_dir, "fig6_arm_clang.txt", "\n".join(lines))
    from repro.eval.svg import save_figure6_svg
    save_figure6_svg(result, results_dir / "fig6_arm_clang.svg")


def test_frodo_wins_every_arm_clang_cell(benchmark):
    result = benchmark.pedantic(lambda: figure6(PROFILE), rounds=1,
                                iterations=1)
    for baseline, per_model in result.improvement.items():
        for model, factor in per_model.items():
            assert factor > 1.0, f"{baseline}/{model}: {factor:.2f}"
