"""A2 — ablation: range statistics and the §5 threats-to-validity.

Reports, per model: optimizable-block counts, eliminated elements,
blocks with discontinuous (multi-run) calculation ranges, and the code
size difference FRODO pays for per-range code instances (the paper's §5
code-duplication discussion).
"""

import pytest

from conftest import write_report
from repro.codegen import DFSynthGenerator, FrodoGenerator
from repro.core.analysis import analyze
from repro.core.ranges import determine_ranges
from repro.eval.experiments import ablation_ranges
from repro.zoo import TABLE1, build_model

MODEL_IDS = [entry.name for entry in TABLE1]


@pytest.mark.parametrize("model_name", MODEL_IDS)
def test_range_determination(benchmark, model_name):
    analyzed = analyze(build_model(model_name))
    result = benchmark.pedantic(lambda: determine_ranges(analyzed),
                                rounds=3, iterations=1)
    assert result.optimizable


def test_report_ablation_ranges(benchmark, results_dir):
    text = benchmark.pedantic(ablation_ranges, rounds=1, iterations=1)
    write_report(results_dir, "ablation_ranges.txt", text)


def test_simpson_discontinuous_ranges_cost_code_not_time(benchmark):
    """§5 threat reproduced: stride selectors give Simpson discontinuous
    ranges, so FRODO's per-run code instances make the *static* program
    longer than the baseline — while the *dynamic* work stays smaller.
    ("This results in longer code relative to other code generators.")"""
    from repro.ir.interp import VirtualMachine
    from repro.sim.simulator import random_inputs

    def gather():
        model = build_model("Simpson")
        analyzed = analyze(model)
        ranges = determine_ranges(analyzed)
        discontinuous = [name for name, rng in ranges.output_range.items()
                         if rng.run_count > 1]
        frodo = FrodoGenerator().generate(model)
        base = DFSynthGenerator().generate(model)
        inputs = random_inputs(model, seed=0)
        ops_f = VirtualMachine(frodo.program).run(
            frodo.map_inputs(inputs)).counts.total.total_element_ops
        ops_b = VirtualMachine(base.program).run(
            base.map_inputs(inputs)).counts.total.total_element_ops
        return discontinuous, frodo.program, base.program, ops_f, ops_b
    discontinuous, frodo, base, ops_f, ops_b = benchmark.pedantic(
        gather, rounds=1, iterations=1)
    assert discontinuous
    assert frodo.statement_count > base.statement_count  # the §5 cost
    assert ops_f < ops_b                                  # the §3 win
