"""E5 — §5 memory study: FRODO's speed must not cost memory.

The timed unit is VM construction (buffer allocation for the generated
program); the report compares static buffer bytes across generators per
model and asserts the paper's parity claim.
"""

import pytest

from conftest import PreparedRun, write_report
from repro.eval.experiments import memory_study
from repro.eval.runner import GENERATOR_ORDER, measure
from repro.zoo import TABLE1

MODEL_IDS = [entry.name for entry in TABLE1]


@pytest.mark.parametrize("model_name", ["AudioProcess", "Maintenance", "HT"])
def test_vm_allocation(benchmark, model_name):
    benchmark.pedantic(lambda: PreparedRun(model_name, "frodo"),
                       rounds=3, iterations=1)


def test_report_memory(benchmark, results_dir):
    text = benchmark.pedantic(memory_study, rounds=1, iterations=1)
    write_report(results_dir, "memory_section5.txt", text)


def test_memory_parity_claim(benchmark):
    """No generator uses >30% more static buffer bytes than another, and
    FRODO never uses more peak VM memory than the baselines."""
    def gather():
        rows = {}
        for model in MODEL_IDS:
            rows[model] = {g: measure(model, g, "x86-gcc")
                           for g in GENERATOR_ORDER}
        return rows
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    for model, cells in rows.items():
        static = [m.static_bytes for m in cells.values()]
        assert max(static) / min(static) < 1.3, f"{model}: {static}"
        assert cells["frodo"].peak_bytes <= cells["simulink"].peak_bytes


def test_report_variable_reuse(benchmark, results_dir):
    """A5: Embedded Coder-style variable reuse as an opt-in FRODO pass —
    static footprint drops substantially with identical semantics."""
    from repro.codegen import make_generator
    from repro.eval.report import format_table
    from repro.zoo import build_model

    def gather():
        rows = []
        for model_name in MODEL_IDS:
            model = build_model(model_name)
            plain = make_generator("frodo").generate(model).program
            reused = make_generator("frodo-reuse").generate(model).program
            rows.append([model_name, plain.static_bytes, reused.static_bytes,
                         f"{plain.static_bytes / reused.static_bytes:.2f}x"])
        return rows
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    text = format_table(
        ["Model", "frodo bytes", "frodo-reuse bytes", "shrink"],
        rows, title="A5: liveness-based variable reuse (opt-in pass)")
    write_report(results_dir, "ablation_bufreuse.txt", text)
    for row in rows:
        assert row[2] <= row[1]
