"""N1 — native check: the emitted C, compiled with this sandbox's real
gcc at -O3, must show the paper's ordering on a convolution-heavy model.

This is the one benchmark that measures actual silicon rather than the
cost model; only two model/generator pairs are compiled to keep runtime
reasonable.
"""

import pytest

from conftest import write_report
from repro.codegen import make_generator
from repro.native import compile_and_run, find_compiler
from repro.sim.simulator import random_inputs
from repro.zoo import build_model

pytestmark = pytest.mark.skipif(find_compiler() is None,
                                reason="no C compiler on PATH")

REPETITIONS = 200_000


def _native_seconds(model_name: str, generator: str) -> float:
    model = build_model(model_name)
    code = make_generator(generator).generate(model)
    inputs = random_inputs(model, seed=7)
    result = compile_and_run(code, inputs, repetitions=REPETITIONS)
    assert result.seconds is not None
    return result.seconds


def test_native_motivating_frodo_vs_simulink(benchmark, results_dir):
    def run():
        return {g: _native_seconds("Motivating", g)
                for g in ("simulink", "dfsynth", "frodo")}
    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"native gcc -O3, {REPETITIONS} repetitions, Motivating model:"]
    for generator, seconds in times.items():
        lines.append(f"  {generator:10s} {seconds:.4f}s "
                     f"({times['simulink'] / seconds:.2f}x vs simulink)")
    write_report(results_dir, "native_gcc_motivating.txt", "\n".join(lines))
    assert times["frodo"] < times["simulink"]


def test_native_manufacture_speedup(benchmark, results_dir):
    def run():
        return (_native_seconds("Maunfacture", "simulink"),
                _native_seconds("Maunfacture", "frodo"))
    simulink, frodo = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = simulink / frodo
    write_report(results_dir, "native_gcc_manufacture.txt",
                 f"Maunfacture native gcc -O3: simulink={simulink:.4f}s "
                 f"frodo={frodo:.4f}s speedup={speedup:.2f}x "
                 "(paper x86-gcc: 4.63x)")
    assert speedup > 1.3, f"expected a real speedup, got {speedup:.2f}x"
