"""Corpus scaling benchmark (`BENCH_corpus.json`).

Measures the two headline effects of redundancy elimination as a
function of *generated* model size and truncation density, using the
seeded corpus generator (:mod:`repro.corpus`) instead of the fixed zoo:

* **redundancy elimination** — total element ops of the FRODO-generated
  program vs the Simulink-style baseline on the same model (the paper's
  Table-2 ratio, here swept over size × density);
* **loop fusion** — vector-backend per-step time with fusion on vs off,
  plus loops entered, nests fused, buffers contracted (split into full
  scalar demotions vs sliding-window rings), and the audit counters for
  shapes the pass had to leave on the table (window-shape and
  nested-depth rejects).

Each grid cell averages several seeds so one lucky draw cannot carry a
trend.  Outputs are cross-checked bitwise between the fused and unfused
runs before any timing is reported.

Run directly (not collected by the tier-1 pytest config)::

    PYTHONPATH=src python benchmarks/bench_corpus.py          # full
    PYTHONPATH=src python benchmarks/bench_corpus.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.codegen import make_generator            # noqa: E402
from repro.corpus import GenConfig, generate_model, model_stats  # noqa: E402
from repro.fuzz import element_ops                  # noqa: E402
from repro.ir.interp import VirtualMachine          # noqa: E402
from repro.sim.simulator import random_inputs       # noqa: E402

DEFAULT_SIZES = (12, 24, 48)
DEFAULT_DENSITIES = (0.1, 0.5)
QUICK_SIZES = (10, 16)


def best_of(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-N wall-clock seconds (min filters scheduler noise)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_seed(seed: int, config: GenConfig, steps: int,
               repeats: int) -> dict:
    """One generated model: op-ratio, fusion speedup, fusion accounting."""
    model = generate_model(seed, config)
    stats = model_stats(model)
    row: dict = {
        "seed": seed,
        "blocks": stats["blocks"],
        "truncating_blocks": stats["truncating_blocks"],
    }

    ops = {}
    for generator in ("simulink", "frodo"):
        code = make_generator(generator).generate(model)
        inputs = code.map_inputs(random_inputs(model, seed=seed))

        vm = VirtualMachine(code.program, backend="vector")
        fused = vm.run(inputs, steps=steps)
        plain = VirtualMachine(code.program, backend="vector", fuse=False)
        unfused = plain.run(inputs, steps=steps)
        for name, expected in unfused.outputs.items():
            assert np.asarray(expected).tobytes() == \
                np.asarray(fused.outputs[name]).tobytes(), (
                f"seed {seed}/{generator}: fused vector output {name!r} "
                f"diverges from unfused")

        fused_s = best_of(lambda: vm.run(inputs, steps=steps), repeats)
        plain_s = best_of(lambda: plain.run(inputs, steps=steps), repeats)
        ops[generator] = sum(element_ops(fused.counts).values())

        if generator == "frodo":
            row["eliminated_elements"] = \
                code.ranges.eliminated_elements(code.analyzed)
            row["fusion"] = vm.fusion_stats.as_dict() \
                if vm.fusion_stats is not None else None
            row["loops_entered_unfused"] = unfused.counts.total.loops_entered
            row["loops_entered_fused"] = fused.counts.total.loops_entered
            row["ms_per_step_unfused"] = round(plain_s * 1e3 / steps, 4)
            row["ms_per_step_fused"] = round(fused_s * 1e3 / steps, 4)
            row["fusion_speedup"] = round(plain_s / fused_s, 3)

    row["element_ops_simulink"] = ops["simulink"]
    row["element_ops_frodo"] = ops["frodo"]
    row["ops_ratio_simulink_over_frodo"] = \
        round(ops["simulink"] / ops["frodo"], 3) if ops["frodo"] else None
    return row


def bench_cell(blocks: int, truncation: float, seeds: int, steps: int,
               repeats: int, vector_len: int) -> dict:
    config = GenConfig(blocks=blocks, vector_len=vector_len,
                       truncation=truncation)
    rows = [bench_seed(seed, config, steps, repeats)
            for seed in range(seeds)]

    def mean(key):
        vals = [r[key] for r in rows if r.get(key) is not None]
        return round(statistics.fmean(vals), 3) if vals else None

    return {
        "blocks": blocks,
        "truncation": truncation,
        "vector_len": vector_len,
        "seeds": seeds,
        "mean_fusion_speedup": mean("fusion_speedup"),
        "mean_ops_ratio": mean("ops_ratio_simulink_over_frodo"),
        "mean_eliminated_elements": mean("eliminated_elements"),
        "mean_nests_fused": round(statistics.fmean(
            [r["fusion"]["nests_fused"] for r in rows
             if r.get("fusion")]), 3) if any(r.get("fusion")
                                             for r in rows) else None,
        "total_flag_mismatch_rejects": sum(
            r["fusion"]["flag_mismatch_rejects"] for r in rows
            if r.get("fusion")),
        # contraction split: full (demoted to scalar) vs windowed (ring)
        "total_buffers_contracted_full": sum(
            r["fusion"]["buffers_contracted"] for r in rows
            if r.get("fusion")),
        "total_buffers_contracted_windowed": sum(
            r["fusion"].get("buffers_windowed", 0) for r in rows
            if r.get("fusion")),
        "total_window_shape_rejects": sum(
            r["fusion"].get("window_shape_rejects", 0) for r in rows
            if r.get("fusion")),
        "total_nested_depth_rejects": sum(
            r["fusion"].get("nested_depth_rejects", 0) for r in rows
            if r.get("fusion")),
        "per_seed": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2 sizes, 1 seed/cell, fewer repeats")
    parser.add_argument("--sizes", nargs="*", type=int, default=None,
                        help=f"block budgets (default {DEFAULT_SIZES})")
    parser.add_argument("--densities", nargs="*", type=float, default=None,
                        help=f"truncation densities "
                             f"(default {DEFAULT_DENSITIES})")
    parser.add_argument("--seeds", type=int, default=None,
                        help="seeds averaged per cell (default 3; quick 1)")
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--vector-len", type=int, default=48)
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here (default: BENCH_corpus.json "
                             "at the repo root; --quick skips writing)")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else \
        (QUICK_SIZES if args.quick else DEFAULT_SIZES)
    densities = tuple(args.densities) if args.densities \
        else DEFAULT_DENSITIES
    seeds = args.seeds if args.seeds is not None else (1 if args.quick else 3)
    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else 7)

    cells = []
    for blocks in sizes:
        for truncation in densities:
            cell = bench_cell(blocks, truncation, seeds, args.steps,
                              repeats, args.vector_len)
            cells.append(cell)
            print(f"blocks={blocks:3d} truncation={truncation}: "
                  f"ops ratio x{cell['mean_ops_ratio']}, "
                  f"fusion x{cell['mean_fusion_speedup']}, "
                  f"eliminated {cell['mean_eliminated_elements']} elems, "
                  f"contracted {cell['total_buffers_contracted_full']} full"
                  f"+{cell['total_buffers_contracted_windowed']} windowed, "
                  f"window-rejects {cell['total_window_shape_rejects']}")

    report = {
        "benchmark": "corpus",
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "sizes": list(sizes),
            "densities": list(densities),
            "seeds_per_cell": seeds,
            "steps": args.steps,
            "repeats": repeats,
            "vector_len": args.vector_len,
        },
        "cells": cells,
        "quick": bool(args.quick),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }

    if args.output or not args.quick:
        out_path = Path(args.output) if args.output \
            else REPO_ROOT / "BENCH_corpus.json"
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
