"""Serving benchmark wrapper (`BENCH_serve.json` trajectory).

Thin entry point over :mod:`repro.serve.bench` so the benchmark runs both
as ``python benchmarks/bench_serve.py`` (CI smoke with ``--quick``) and
as ``frodo bench-serve``.  Measures closed-loop ``run`` throughput and
latency percentiles across worker counts, cold-vs-warm first-request
latency, compile-after-restart service from the persistent artifact
cache, and the adaptive tier (cold diverse-corpus p99 vs vector-only,
hot-model time-to-promotion and steady-state auto-vs-native).

Run directly (not collected by the tier-1 pytest config)::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick  # CI smoke
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
