"""Serving benchmark wrapper (`BENCH_serve.json` / `BENCH_cluster.json`).

Thin entry point over :mod:`repro.serve.bench` so the benchmark runs both
as ``python benchmarks/bench_serve.py`` (CI smoke with ``--quick``) and
as ``frodo bench-serve``.  Measures closed-loop ``run`` throughput and
latency percentiles across worker counts, cold-vs-warm first-request
latency, compile-after-restart service from the persistent artifact
cache, and the adaptive tier (cold diverse-corpus p99 vs vector-only,
hot-model time-to-promotion and steady-state auto-vs-native).

With ``--cluster`` it instead runs the fleet benchmark
(:mod:`repro.serve.bench_cluster`): hot-fingerprint throughput across
1/2/4/8 shards, the sleep-op concurrency curve, cold-compile dedup
through the shared artifact store, and shard-kill recovery — written to
``BENCH_cluster.json``.

Run directly (not collected by the tier-1 pytest config)::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_serve.py --cluster  # fleet
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--cluster" in argv:
        argv.remove("--cluster")
        from repro.serve.bench_cluster import main as cluster_main
        return cluster_main(argv)
    from repro.serve.bench import main as serve_main
    return serve_main(argv)


if __name__ == "__main__":
    sys.exit(main())
