"""A4 — sensitivity sweeps on the motivating same-convolution pattern.

Shows the scaling laws behind the paper's point measurements: FRODO's
edge grows as the Selector keeps less (truncation sweep) and the
Embedded Coder boundary-judgment penalty grows with kernel width
(kernel sweep).
"""

from conftest import write_report
from repro.eval.sweeps import (
    kernel_sweep, render_sweep, same_conv_model, truncation_sweep,
)


def test_report_truncation_sweep(benchmark, results_dir):
    points = benchmark.pedantic(truncation_sweep, rounds=1, iterations=1)
    text = render_sweep(points, "kept fraction", "dfsynth",
                        "A4a: speedup vs kept output fraction "
                        "(Conv 128, kernel 9, vs DFSynth, x86-gcc)")
    write_report(results_dir, "sweep_truncation.txt", text)
    # Monotone: keeping less output must never reduce the speedup.
    speedups = [p.speedup for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(speedups, speedups[1:]))
    # At fraction 1.0 there is (almost) nothing to eliminate.
    assert speedups[-1] < 1.15
    # At 1/8 the win should be substantial.
    assert speedups[0] > 2.0


def test_report_kernel_sweep(benchmark, results_dir):
    points = benchmark.pedantic(kernel_sweep, rounds=1, iterations=1)
    text = render_sweep(points, "kernel taps", "simulink",
                        "A4b: speedup vs kernel width "
                        "(Conv 128, keep 50%, vs Simulink EC, x86-gcc)")
    write_report(results_dir, "sweep_kernel.txt", text)
    speedups = [p.speedup for p in points]
    assert speedups[-1] > speedups[0], \
        "boundary judgments should hurt more with wider kernels"


def test_sweep_models_validate(benchmark):
    """Every sweep configuration still passes random-testing validation."""
    import numpy as np
    from repro.codegen import make_generator
    from repro.ir.interp import VirtualMachine
    from repro.sim.simulator import random_inputs, simulate

    def run():
        for fraction in (0.125, 1.0):
            for kernel in (3, 31):
                model = same_conv_model(96, kernel, fraction)
                inputs = random_inputs(model, seed=1)
                expected = simulate(model, inputs)["y"]
                for generator in ("simulink", "frodo"):
                    code = make_generator(generator).generate(model)
                    got = code.map_outputs(VirtualMachine(code.program).run(
                        code.map_inputs(inputs)).outputs)["y"]
                    np.testing.assert_allclose(
                        np.asarray(got).ravel(),
                        np.asarray(expected).ravel())
        return True
    assert benchmark.pedantic(run, rounds=1, iterations=1)
