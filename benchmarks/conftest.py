"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Timed work units execute generated
programs in the IR virtual machine; report "benches" (rounds=1) render the
experiment tables into ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the full paper-shaped
artifacts on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.codegen import make_generator
from repro.ir.interp import VirtualMachine
from repro.sim.simulator import random_inputs
from repro.zoo import build_model

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


class PreparedRun:
    """A generated program plus prepared inputs, ready to execute."""

    def __init__(self, model_name: str, generator: str, seed: int = 0):
        self.model_name = model_name
        self.generator = generator
        model = build_model(model_name)
        self.code = make_generator(generator).generate(model)
        self.vm = VirtualMachine(self.code.program)
        self.inputs = self.code.map_inputs(random_inputs(model, seed=seed))

    def execute(self) -> None:
        self.vm.run(self.inputs, steps=1)


_PREPARED: dict[tuple[str, str], PreparedRun] = {}


@pytest.fixture
def prepared_run():
    def factory(model_name: str, generator: str) -> PreparedRun:
        key = (model_name, generator)
        if key not in _PREPARED:
            _PREPARED[key] = PreparedRun(model_name, generator)
        return _PREPARED[key]
    return factory


def write_report(results_dir: Path, name: str, text: str) -> Path:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path
