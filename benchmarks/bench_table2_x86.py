"""E2 — Table 2: execution duration on x86 (GCC and Clang profiles).

The timed work unit is one step of the generated program in the IR
virtual machine — interpretation time is proportional to dynamic op
count, the quantity FRODO reduces, so the pytest-benchmark column is a
direct (machine-local) analogue of the paper's execution-duration column.
The cost-model rendition of Table 2 (both compiler profiles, 10,000
repetitions) is written to ``results/table2_x86.txt``.
"""

import pytest

from conftest import write_report
from repro.eval.experiments import PAPER_TABLE2, table2
from repro.eval.runner import GENERATOR_ORDER
from repro.zoo import TABLE1

MODEL_IDS = [entry.name for entry in TABLE1]


@pytest.mark.parametrize("generator", GENERATOR_ORDER)
@pytest.mark.parametrize("model_name", MODEL_IDS)
def test_vm_execution(benchmark, prepared_run, model_name, generator):
    run = prepared_run(model_name, generator)
    benchmark.pedantic(run.execute, rounds=3, iterations=1)


def test_report_table2(benchmark, results_dir):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    lines = [result.render(), ""]
    for profile in ("x86-gcc", "x86-clang"):
        measured = result.improvement_ranges(profile)
        lines.append(f"FRODO improvement ranges on {profile} "
                     "(paper x86 ranges in parentheses):")
        paper = {
            ("x86-gcc", "simulink"): (1.26, 5.64),
            ("x86-gcc", "dfsynth"): (1.32, 5.75),
            ("x86-gcc", "hcg"): (1.22, 2.89),
            ("x86-clang", "simulink"): (1.79, 7.78),
            ("x86-clang", "dfsynth"): (1.49, 4.99),
            ("x86-clang", "hcg"): (1.39, 3.03),
        }
        for baseline, (low, high) in measured.items():
            p_low, p_high = paper[(profile, baseline)]
            lines.append(f"  vs {baseline:9s} measured {low:.2f}x-{high:.2f}x"
                         f"  (paper {p_low:.2f}x-{p_high:.2f}x)")
        lines.append("")

    # Per-model winner check: FRODO must be fastest in every cell.
    for model in MODEL_IDS:
        for profile in ("x86-gcc", "x86-clang"):
            frodo = result.seconds(model, "frodo", profile)
            for baseline in GENERATOR_ORDER[:-1]:
                assert frodo < result.seconds(model, baseline, profile), \
                    f"FRODO not fastest on {model}@{profile} vs {baseline}"
    lines.append("paper reference (x86 seconds, gcc/clang):")
    for model, row in PAPER_TABLE2.items():
        cells = "  ".join(f"{g}={row[g][0]:.3f}/{row[g][1]:.3f}"
                          for g in GENERATOR_ORDER)
        lines.append(f"  {model:13s} {cells}")
    write_report(results_dir, "table2_x86.txt", "\n".join(lines))
