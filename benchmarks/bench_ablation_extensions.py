"""A3 — ablation: the §5 extension modes.

Quantifies both trade-offs the paper's discussion section predicts:

* ``frodo-fn`` (generic function interface) — static code shrinks on
  models with several Convolution instances, dynamic work unchanged;
* ``frodo-coalesce`` (contiguous ranges) — static code shrinks on
  discontinuous-range models, dynamic work grows slightly.
"""

import pytest

from conftest import write_report
from repro.codegen import make_generator
from repro.eval.report import format_table
from repro.ir.interp import VirtualMachine
from repro.sim.simulator import random_inputs
from repro.zoo import build_model

VARIANTS = ("frodo", "frodo-fn", "frodo-coalesce", "frodo-fn-coalesce")
MODELS = ("AudioProcess", "HighPass", "Maintenance", "Simpson", "RunningDiff")


def _stats(model_name: str, generator: str) -> tuple[int, int, int]:
    model = build_model(model_name)
    code = make_generator(generator).generate(model)
    inputs = code.map_inputs(random_inputs(model, seed=0))
    counts = VirtualMachine(code.program).run(inputs).counts
    return (code.program.statement_count, len(code.program.functions),
            counts.total.total_element_ops)


@pytest.mark.parametrize("generator", VARIANTS)
@pytest.mark.parametrize("model_name", ["HighPass", "Simpson"])
def test_vm_execution(benchmark, prepared_run, model_name, generator):
    run = prepared_run(model_name, generator)
    benchmark.pedantic(run.execute, rounds=3, iterations=1)


def test_report_extension_ablation(benchmark, results_dir):
    def gather():
        rows = []
        for model in MODELS:
            for generator in VARIANTS:
                stmts, funcs, ops = _stats(model, generator)
                rows.append([model, generator, stmts, funcs, ops])
        return rows
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    text = format_table(
        ["Model", "variant", "IR stmts", "functions", "element ops"],
        rows, title="Ablation A3: §5 extension modes")
    write_report(results_dir, "ablation_extensions.txt", text)


def test_generic_functions_shrink_conv_heavy_models(benchmark):
    def gather():
        return {m: (_stats(m, "frodo")[0], _stats(m, "frodo-fn")[0])
                for m in ("AudioProcess", "HighPass", "Maintenance")}
    rows = benchmark.pedantic(gather, rounds=1, iterations=1)
    for model, (inline, shared) in rows.items():
        assert shared < inline, f"{model}: fn mode did not shrink code"


def test_coalesce_shrinks_discontinuous_models(benchmark):
    def gather():
        return (_stats("Simpson", "frodo"), _stats("Simpson", "frodo-coalesce"))
    (stmts_a, _, ops_a), (stmts_b, _, ops_b) = benchmark.pedantic(
        gather, rounds=1, iterations=1)
    assert stmts_b < stmts_a      # contiguous ranges: fewer code instances
    assert ops_b >= ops_a         # at the price of recomputed elements
    assert ops_b < ops_a * 1.25   # bounded price
