"""Performance-regression smoke gate (`python tools/perf_gate.py`).

Runs a fresh ``benchmarks/bench_vm_backends.py`` sweep and compares
every per-cell ``ms_per_step`` number (and the fused-vs-unfused
speedups) against the committed ``BENCH_vm.json`` baseline at the repo
root.  A cell that regresses by more than ``--threshold`` (default 30%)
fails the gate; cells missing from either side are reported but do not
fail (the baseline machine may lack a compiler, or a new backend may
not be in the baseline yet).

Timing noise guard: cells whose baseline is below ``--floor-ms``
(default 0.05 ms) are informational only — at that scale scheduler
jitter swamps any real regression.

The gate also re-asserts the fusion acceptance floors: ImagePipeline ×
frodo must keep an at-least-5× fused-vs-unfused per-step win on the
vector or native backend, and native alone must stay at parity or
better (``NATIVE_FUSION_FLOOR`` — fusion must never pessimize the
compiled code).

Usage::

    PYTHONPATH=src python tools/perf_gate.py            # full gate
    PYTHONPATH=src python tools/perf_gate.py --quick    # frodo-only smoke
    PYTHONPATH=src python tools/perf_gate.py --fresh out.json  # keep run
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

FUSION_FLOOR_MODEL = ("ImagePipeline", "frodo")
#: Best-of-vector/native fused-vs-unfused floor.  Deeper fusion (PR 9:
#: flag-aware merging + nested merges + contraction) holds the vector
#: win at 6.1-9.1x across clean runs (fewer planned nests = fewer numpy
#: dispatches, which is what bounds the Python vector backend), so the
#: floor moves up from the original 2x to lock the new win in.
FUSION_FLOOR = 5.0
#: Native fused-vs-unfused floor on the same cell — a *no-pessimization*
#: guard, not a speedup claim.  gcc -O2 compiles the fused and unfused
#: programs to equally fast code on the zoo models (they fit in L1, so
#: fusion's memory-traffic win has nothing to save natively); interleaved
#: clean measurements put the true ratio at 0.92-1.01x, and an earlier
#: 1.27x in the baseline was a scheduler-noise draw.  Per-run native
#: times are tens of microseconds, so best-of-N draws span roughly
#: 0.7-1.3x; the floor sits below that band and only catches gross
#: pessimization — a lowering change that genuinely defeats gcc's
#: auto-vectorization shows up as 2x+, far under 0.6.
NATIVE_FUSION_FLOOR = 0.6


def cell_key(cell: dict) -> tuple:
    return (cell["model"], cell["generator"])


def compare(baseline: dict, fresh: dict, threshold: float,
            floor_ms: float) -> tuple[list[str], list[str]]:
    """Return (failures, notes)."""
    failures: list[str] = []
    notes: list[str] = []
    base_cells = {cell_key(c): c for c in baseline.get("cells", [])}
    for cell in fresh.get("cells", []):
        key = cell_key(cell)
        base = base_cells.get(key)
        if base is None:
            notes.append(f"{key}: not in baseline (skipped)")
            continue
        for column in ("ms_per_step", "ms_per_step_unfused"):
            for backend, got in cell.get(column, {}).items():
                want = base.get(column, {}).get(backend)
                if want is None:
                    notes.append(
                        f"{key} {column}[{backend}]: no baseline (skipped)")
                    continue
                if want < floor_ms:
                    notes.append(
                        f"{key} {column}[{backend}]: baseline {want}ms "
                        f"below noise floor (informational)")
                    continue
                ratio = got / want
                line = (f"{key} {column}[{backend}]: "
                        f"{want:.4f}ms -> {got:.4f}ms ({ratio:.2f}x)")
                if ratio > 1.0 + threshold:
                    failures.append(line)
                else:
                    notes.append(line)
    return failures, notes


def check_fusion_floor(fresh: dict) -> list[str]:
    failures: list[str] = []
    for cell in fresh.get("cells", []):
        if cell_key(cell) != FUSION_FLOOR_MODEL:
            continue
        speedups = cell.get("fusion_speedup", {})
        candidates = {b: speedups[b] for b in ("vector", "native")
                      if b in speedups}
        if not candidates:
            failures.append(
                f"{FUSION_FLOOR_MODEL}: no vector/native fusion_speedup "
                "recorded")
            return failures
        best = max(candidates.values())
        if best < FUSION_FLOOR:
            failures.append(
                f"{FUSION_FLOOR_MODEL}: best fused-vs-unfused speedup "
                f"{best:.2f}x (over {sorted(candidates)}) is below the "
                f"{FUSION_FLOOR:.0f}x acceptance floor")
        native = candidates.get("native")
        if native is not None and native < NATIVE_FUSION_FLOOR:
            failures.append(
                f"{FUSION_FLOOR_MODEL}: native fused-vs-unfused ratio "
                f"{native:.2f}x is below the {NATIVE_FUSION_FLOOR:.2f}x "
                "no-pessimization floor")
        return failures
    failures.append(f"{FUSION_FLOOR_MODEL}: cell missing from fresh run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "BENCH_vm.json"))
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fail on per-cell regressions beyond this "
                             "fraction (default 0.30 = +30%%)")
    parser.add_argument("--floor-ms", type=float, default=0.05,
                        help="baseline cells faster than this are "
                             "informational only")
    parser.add_argument("--quick", action="store_true",
                        help="frodo generator only, fewer repeats")
    parser.add_argument("--fresh", default=None,
                        help="also write the fresh run's JSON here")
    parser.add_argument("--skip-fusion-floor", action="store_true",
                        help="skip the ImagePipeline 2x fusion check")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"perf gate: no baseline at {baseline_path}; nothing to "
              "compare against")
        return 1
    baseline = json.loads(baseline_path.read_text())

    from benchmarks.bench_vm_backends import main as bench_main

    with tempfile.TemporaryDirectory(prefix="perf_gate_") as tmp:
        fresh_path = Path(args.fresh) if args.fresh \
            else Path(tmp) / "fresh.json"
        bench_argv = ["--output", str(fresh_path)]
        if args.quick:
            # --quick trims the generator grid, but keep enough repeats
            # that best-of-N actually filters scheduler noise — a flaky
            # gate is worse than a slightly slower one.
            bench_argv += ["--quick", "--repeats", "5"]
        # bench_main returns non-zero on its own vector-speedup warning;
        # the gate applies its own thresholds instead.
        bench_main(bench_argv)
        fresh = json.loads(fresh_path.read_text())
        failures, notes = compare(baseline, fresh, args.threshold,
                                  args.floor_ms)
        # Up to two retries: a shared/1-core runner can stall a single
        # cell by 30%+ from scheduler noise alone.  Re-measure and keep
        # the per-cell best across runs; only a regression that survives
        # three independent sweeps fails the gate (a real 30% regression
        # does — noise draws don't repeat three times on the same cell).
        for attempt in (1, 2):
            if not failures:
                break
            print(f"perf gate: {len(failures)} cell(s) over threshold; "
                  f"re-measuring (attempt {attempt}) to rule out "
                  "scheduler noise")
            retry_path = Path(tmp) / f"fresh_retry{attempt}.json"
            bench_main(["--output", str(retry_path)]
                       + (["--quick", "--repeats", "5"]
                          if args.quick else []))
            retry = json.loads(retry_path.read_text())
            by_key = {cell_key(c): c for c in retry.get("cells", [])}
            for cell in fresh.get("cells", []):
                other = by_key.get(cell_key(cell))
                if other is None:
                    continue
                for column in ("ms_per_step", "ms_per_step_unfused"):
                    for backend, got in cell.get(column, {}).items():
                        again = other.get(column, {}).get(backend)
                        if again is not None:
                            cell[column][backend] = min(got, again)
                # Re-derive the fused-vs-unfused ratios from the merged
                # best-of timings so the fusion-floor check sees the
                # least noisy draw too (single-run ratios of ~50us
                # native cells are coin tosses).
                fused_ms = cell.get("ms_per_step", {})
                for backend, um in cell.get("ms_per_step_unfused",
                                            {}).items():
                    fm = fused_ms.get(backend)
                    if fm:
                        cell.setdefault("fusion_speedup", {})[backend] = \
                            round(um / fm, 2)
            failures, notes = compare(baseline, fresh, args.threshold,
                                      args.floor_ms)

    if not args.skip_fusion_floor:
        failures += check_fusion_floor(fresh)

    for line in notes:
        print(f"  ok   {line}")
    for line in failures:
        print(f"  FAIL {line}")
    if failures:
        print(f"perf gate: {len(failures)} regression(s) beyond "
              f"+{args.threshold:.0%} (or below the fusion floor)")
        return 1
    print(f"perf gate: {len(notes)} cells within +{args.threshold:.0%} "
          "of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
